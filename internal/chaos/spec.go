// Package chaos is a deterministic, JSON-scriptable fault-campaign
// engine layered over the router's fault entry points. A campaign is a
// timeline of scheduled and correlated failure events — protocol-group
// wipeouts, common-mode fabric+bus-controller events, transient faults
// that self-clear, repair storms, deferred repair policies — plus
// inline service-level assertions. Campaigns are replayable: every run
// emits a repro bundle (seed, spec, event timeline) from which the
// exact run can be reproduced and verified bit-for-bit.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/linecard"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Campaign is the top-level JSON campaign document.
type Campaign struct {
	// Name labels the campaign in bundles and reports.
	Name string `json:"name"`
	// Arch is "dra" (default) or "bdr".
	Arch string `json:"arch,omitempty"`
	// N is the linecard count; M the number sharing LC 0's protocol
	// (default N) — the paper's uniform layout.
	N int `json:"n"`
	M int `json:"m,omitempty"`
	// Seed drives every stochastic choice (CSMA/CD backoff). The same
	// spec and seed reproduce the identical event timeline.
	Seed uint64 `json:"seed"`
	// Load is the uniform offered-load fraction in [0, 1].
	Load float64 `json:"load,omitempty"`
	// Topology selects the interconnect graph the campaign's router runs
	// on (bus — the default —, crossbar, mesh, fattree). The fail-unit /
	// repair-unit event kinds address its interior nodes and links.
	Topology *topology.Spec `json:"topology,omitempty"`
	// Horizon extends the run past the last event (model time units).
	// Zero means the run ends after the last event settles.
	Horizon float64 `json:"horizon,omitempty"`
	// Repair selects a deferred/batched repair policy applied on top of
	// the scripted events.
	Repair *RepairPolicy `json:"repair,omitempty"`
	// Events is the fault timeline.
	Events []Event `json:"events"`
}

// RepairPolicy describes the campaign's standing repair process.
type RepairPolicy struct {
	// Mode is "deferred": every Interval, a maintenance visit repairs
	// all accumulated faults in one batch (LCs, EIB lines, fabric).
	Mode string `json:"mode"`
	// Interval is the time between maintenance visits.
	Interval float64 `json:"interval"`
}

// Event is one campaign timeline entry.
type Event struct {
	At float64 `json:"at"`
	// Kind selects the action:
	//
	//	fail                 — fail one component of one LC
	//	repair-component     — repair one component of one LC
	//	repair               — whole-LC repair (all failed units)
	//	fail-bus / repair-bus
	//	fail-fabric-card / repair-fabric-card   (Card)
	//	fail-fabric-port / repair-fabric-port   (LC)
	//	fail-unit / repair-unit — one topology interconnect unit (Unit
	//	                       indexes the graph's unit space; only on
	//	                       non-bus topologies, which have units)
	//	fail-protocol-group  — fail Component on every LC speaking
	//	                       Protocol (correlated wipeout)
	//	common-mode          — apply every Sub event at this instant
	//	                       before the model settles
	//	transient            — fail, then self-clear after ClearAfter
	//	repair-storm         — repair everything failed at once
	//	expect               — assert CanDeliver(LC) == Up after settle
	//	kill-worker          — SIGKILL the named drad fleet worker
	//	                       (campaigns with fleet events need a
	//	                       FleetDriver in Options)
	//	restart-worker       — boot the named fleet worker (back) up
	//	expect-workers       — assert the live fleet size == Workers
	Kind       string  `json:"kind"`
	LC         int     `json:"lc,omitempty"`
	Component  string  `json:"component,omitempty"`
	Protocol   string  `json:"protocol,omitempty"`
	Card       int     `json:"card,omitempty"`
	Unit       int     `json:"unit,omitempty"`
	ClearAfter float64 `json:"clear_after,omitempty"`
	Sub        []Event `json:"sub,omitempty"`
	Up         *bool   `json:"up,omitempty"`
	// Worker names the fleet worker a kill-worker/restart-worker event
	// addresses; Workers is the expect-workers assertion's fleet size.
	Worker  string `json:"worker,omitempty"`
	Workers *int   `json:"workers,omitempty"`
}

// Parse decodes and validates a campaign document. Unknown fields are
// rejected so a typo in a spec fails loudly instead of silently doing
// nothing.
func Parse(data []byte) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("chaos: %w", err)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// LoadFile reads and parses a campaign file.
func LoadFile(path string) (Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Campaign{}, fmt.Errorf("chaos: %w", err)
	}
	return Parse(data)
}

// Validate checks the campaign for structural errors: unknown kinds,
// out-of-range linecards, components the architecture does not have
// (failing a PDLU on BDR would panic deep in the linecard model), and
// malformed assertions.
func (c Campaign) Validate() error {
	if !strings.EqualFold(c.Arch, "") && !strings.EqualFold(c.Arch, "dra") && !strings.EqualFold(c.Arch, "bdr") {
		return fmt.Errorf("chaos: unknown arch %q", c.Arch)
	}
	if c.N < 2 {
		return fmt.Errorf("chaos: need at least two linecards, got %d", c.N)
	}
	if c.M < 0 || c.M > c.N {
		return fmt.Errorf("chaos: m %d outside [0, %d]", c.M, c.N)
	}
	if c.Load < 0 || c.Load > 1 {
		return fmt.Errorf("chaos: load %g outside [0, 1]", c.Load)
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(c.N); err != nil {
			return fmt.Errorf("chaos: topology.%w", err)
		}
	}
	if c.Horizon < 0 {
		return fmt.Errorf("chaos: negative horizon %g", c.Horizon)
	}
	if c.Repair != nil {
		if !strings.EqualFold(c.Repair.Mode, "deferred") {
			return fmt.Errorf("chaos: unknown repair mode %q", c.Repair.Mode)
		}
		if c.Repair.Interval <= 0 {
			return fmt.Errorf("chaos: repair interval must be positive, got %g", c.Repair.Interval)
		}
	}
	for i, e := range c.Events {
		if err := c.validateEvent(e, false); err != nil {
			return fmt.Errorf("chaos: event %d: %w", i, err)
		}
	}
	return nil
}

func (c Campaign) isBDR() bool { return strings.EqualFold(c.Arch, "bdr") }

// HasFleetEvents reports whether the campaign scripts drad-fleet faults
// (kill-worker/restart-worker/expect-workers). Such campaigns need a
// FleetDriver wired into Options; pure router campaigns do not.
func (c Campaign) HasFleetEvents() bool {
	for _, e := range c.Events {
		switch strings.ToLower(e.Kind) {
		case "kill-worker", "restart-worker", "expect-workers":
			return true
		}
	}
	return false
}

// topologySpec returns the campaign's topology spec (zero value = bus).
func (c Campaign) topologySpec() topology.Spec {
	if c.Topology == nil {
		return topology.Spec{}
	}
	return *c.Topology
}

// topologyKind names the campaign's topology for messages.
func (c Campaign) topologyKind() string {
	k, err := topology.ParseKind(c.topologySpec().Kind)
	if err != nil {
		return c.topologySpec().Kind
	}
	return k.String()
}

// topologyUnits counts the interconnect units the campaign's topology
// exposes (0 for the bus, which has no interior failure modes). It
// assumes the spec already validated.
func (c Campaign) topologyUnits() int {
	g, err := topology.New(c.topologySpec(), c.N)
	if err != nil {
		return 0
	}
	return g.Units()
}

func (c Campaign) validateEvent(e Event, nested bool) error {
	if e.At < 0 {
		return fmt.Errorf("negative time %g", e.At)
	}
	needLC, needComp := false, false
	switch strings.ToLower(e.Kind) {
	case "fail", "repair-component":
		needLC, needComp = true, true
	case "transient":
		needLC, needComp = true, true
		if e.ClearAfter <= 0 {
			return fmt.Errorf("transient needs a positive clear_after, got %g", e.ClearAfter)
		}
	case "repair":
		needLC = true
	case "fail-bus", "repair-bus":
		if c.isBDR() {
			return fmt.Errorf("%s: BDR has no EIB", e.Kind)
		}
	case "fail-fabric-card", "repair-fabric-card":
		if e.Card < 0 {
			return fmt.Errorf("negative fabric card %d", e.Card)
		}
	case "fail-fabric-port", "repair-fabric-port":
		needLC = true
	case "fail-unit", "repair-unit":
		if e.Unit < 0 {
			return fmt.Errorf("negative topology unit %d", e.Unit)
		}
		if max := c.topologyUnits(); e.Unit >= max {
			return fmt.Errorf("topology unit %d outside [0, %d) — the %s topology has %d interconnect units",
				e.Unit, max, c.topologyKind(), max)
		}
	case "fail-protocol-group":
		needComp = true
		if _, err := parseProtocol(e.Protocol); err != nil {
			return err
		}
	case "repair-storm":
	case "kill-worker", "restart-worker":
		if e.Worker == "" {
			return fmt.Errorf("%s needs a worker name", strings.ToLower(e.Kind))
		}
	case "expect-workers":
		if e.Workers == nil || *e.Workers < 0 {
			return fmt.Errorf("expect-workers needs a non-negative workers count")
		}
	case "common-mode":
		if nested {
			return fmt.Errorf("common-mode events cannot nest")
		}
		if len(e.Sub) == 0 {
			return fmt.Errorf("common-mode needs sub events")
		}
		for j, s := range e.Sub {
			switch strings.ToLower(s.Kind) {
			case "expect", "expect-workers", "kill-worker", "restart-worker":
				return fmt.Errorf("sub %d: %s cannot be a common-mode sub event", j, strings.ToLower(s.Kind))
			}
			if err := c.validateEvent(s, true); err != nil {
				return fmt.Errorf("sub %d: %w", j, err)
			}
		}
	case "expect":
		needLC = true
		if e.Up == nil {
			return fmt.Errorf("expect needs an up verdict")
		}
	default:
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	if needLC && (e.LC < 0 || e.LC >= c.N) {
		return fmt.Errorf("lc %d outside [0, %d)", e.LC, c.N)
	}
	if needComp {
		comp, err := parseComponent(e.Component)
		if err != nil {
			return err
		}
		if c.isBDR() && (comp == linecard.PDLU || comp == linecard.BusController) {
			return fmt.Errorf("BDR has no %v", comp)
		}
	}
	return nil
}

func parseProtocol(s string) (packet.Protocol, error) {
	switch strings.ToLower(s) {
	case "ethernet":
		return packet.ProtoEthernet, nil
	case "sonet":
		return packet.ProtoSONET, nil
	case "atm":
		return packet.ProtoATM, nil
	case "framerelay", "frame-relay":
		return packet.ProtoFrameRelay, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}

func parseComponent(s string) (linecard.Component, error) {
	switch strings.ToUpper(s) {
	case "PIU":
		return linecard.PIU, nil
	case "PDLU":
		return linecard.PDLU, nil
	case "SRU":
		return linecard.SRU, nil
	case "LFE":
		return linecard.LFE, nil
	case "BC", "BUSCONTROLLER", "BUS-CONTROLLER":
		return linecard.BusController, nil
	default:
		return 0, fmt.Errorf("unknown component %q", s)
	}
}
