package sweep

// Pool is the long-lived sibling of Run: where Run fans a fixed grid out
// and returns, a Pool keeps a bounded set of worker slots alive for
// callers that dispatch work over time — the drad job scheduler runs
// every admitted job on one. The bound is the pool's whole point: it
// converts "too much work" into waiting (or a refused TryGo) instead of
// unbounded goroutine growth.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded, long-lived worker pool. The zero value is not
// usable; construct with NewPool.
type Pool struct {
	slots chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	onIdle func()
}

// NewPool creates a pool with the given number of worker slots; 0 or
// negative selects runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{slots: make(chan struct{}, workers)}
}

// Workers returns the slot count.
func (p *Pool) Workers() int { return cap(p.slots) }

// OnIdle registers a hook invoked (on the worker's goroutine) each time
// a task finishes and its slot has been released. Schedulers use it to
// dispatch queued work the moment capacity frees: a TryGo that failed
// because the pool was full is guaranteed a hook invocation after any of
// the then-occupied slots empties. Set it once, before submitting work.
func (p *Pool) OnIdle(fn func()) {
	p.mu.Lock()
	p.onIdle = fn
	p.mu.Unlock()
}

// idle fetches the hook under the lock.
func (p *Pool) idle() func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.onIdle
}

// InFlight returns the number of currently occupied slots.
func (p *Pool) InFlight() int { return len(p.slots) }

// Go runs fn on its own goroutine once a worker slot frees, blocking
// until then (or until ctx is cancelled). A panicking fn releases its
// slot and is reported as an error to no one — callers that care wrap
// fn with their own recovery; the pool only guarantees it survives.
func (p *Pool) Go(ctx context.Context, fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("sweep: pool is closed")
	}
	p.wg.Add(1)
	p.mu.Unlock()
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.wg.Done()
		return ctx.Err()
	}
	go p.run(fn)
	return nil
}

// TryGo is Go without the wait: it returns false when no slot is free
// or the pool is closed.
func (p *Pool) TryGo(fn func()) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.wg.Add(1)
	p.mu.Unlock()
	select {
	case p.slots <- struct{}{}:
	default:
		p.wg.Done()
		return false
	}
	go p.run(fn)
	return true
}

// run executes one task: survive its panic, release the slot, then fire
// the idle hook so a scheduler can backfill the freed capacity.
func (p *Pool) run(fn func()) {
	defer p.wg.Done()
	func() {
		defer func() {
			recover()
			<-p.slots
		}()
		fn()
	}()
	if h := p.idle(); h != nil {
		func() {
			defer func() { recover() }()
			h()
		}()
	}
}

// Close refuses further submissions and waits for every in-flight fn to
// finish. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
}
