package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestRunOrdering: results come back in index order whatever the worker
// count, and are bit-identical across pool sizes.
func TestRunOrdering(t *testing.T) {
	const n = 97
	var ref []float64
	for _, workers := range []int{1, 4, runtime.NumCPU(), 16} {
		got, err := Run(context.Background(), n, Options{Workers: workers},
			func(_ context.Context, i int) (float64, error) {
				return float64(i) * 1.5, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %g, workers=1 got %g", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestMapPreservesOrder: Map is Run with the indexing handled.
func TestMapPreservesOrder(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd"}
	got, err := Map(context.Background(), items, Options{Workers: 3},
		func(_ context.Context, s string) (int, error) { return len(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("got %v", got)
		}
	}
}

// TestCancellationPrefix: cancelling mid-sweep returns promptly with a
// correctly-ordered prefix of completed cells.
func TestCancellationPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	var count atomic.Int64
	start := time.Now()
	got, err := Run(ctx, n, Options{Workers: 2}, func(ctx context.Context, i int) (int, error) {
		if count.Add(1) == 50 {
			cancel()
		}
		return i * i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancellation took %v, not prompt", took)
	}
	if len(got) == n {
		t.Fatalf("sweep ran to completion despite cancellation")
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("prefix[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestCancelledBeforeStart: an already-cancelled context runs nothing.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	got, err := Run(ctx, 100, Options{Workers: 4}, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d results from a cancelled sweep", len(got))
	}
}

// TestPanicIsolation: a panicking cell surfaces as an error naming the
// cell; other cells still complete and the process survives.
func TestPanicIsolation(t *testing.T) {
	var completed atomic.Int64
	_, err := Run(context.Background(), 20, Options{Workers: 4}, func(_ context.Context, i int) (int, error) {
		if i == 7 {
			panic("cell exploded")
		}
		completed.Add(1)
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "cell 7") || !strings.Contains(err.Error(), "cell exploded") {
		t.Fatalf("err = %v, want panic error naming cell 7", err)
	}
	if completed.Load() != 19 {
		t.Fatalf("%d cells completed, want 19", completed.Load())
	}
}

// TestFirstErrorByIndex: the lowest-index cell error is reported, so
// error reporting is deterministic across worker counts.
func TestFirstErrorByIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), 30, Options{Workers: workers}, func(_ context.Context, i int) (int, error) {
			if i == 11 || i == 23 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 11 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 11 failed", workers, err)
		}
	}
}

// TestMetricsInstrumentation: the sweep_* families count dispatches and
// completions and drain the queue-depth gauge to zero.
func TestMetricsInstrumentation(t *testing.T) {
	reg := metrics.NewRegistry()
	_, err := Run(context.Background(), 25, Options{Workers: 4, Metrics: reg, Name: "figure6"},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterVec("sweep_cells_done_total", "", "sweep").With("figure6").Value(); got != 25 {
		t.Fatalf("sweep_cells_done_total = %d, want 25", got)
	}
	if got := reg.CounterVec("sweep_cells_started_total", "", "sweep").With("figure6").Value(); got != 25 {
		t.Fatalf("sweep_cells_started_total = %d, want 25", got)
	}
	if got := reg.GaugeVec("sweep_queue_depth", "", "sweep").With("figure6").Value(); got != 0 {
		t.Fatalf("sweep_queue_depth = %g after completion, want 0", got)
	}
	if got := reg.Histogram("sweep_cell_seconds", "", []float64{1}).Count(); got != 25 {
		t.Fatalf("sweep_cell_seconds count = %d, want 25", got)
	}
}

// TestNilMetricsFree: a nil registry must be accepted (all instruments
// are no-ops), matching the repo-wide nil-safe metrics convention.
func TestNilMetricsFree(t *testing.T) {
	got, err := Run(context.Background(), 5, Options{}, func(_ context.Context, i int) (int, error) {
		return i + 1, nil
	})
	if err != nil || len(got) != 5 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestEmptyGrid: n = 0 is a no-op, not a hang.
func TestEmptyGrid(t *testing.T) {
	got, err := Run(context.Background(), 0, Options{}, func(_ context.Context, i int) (int, error) {
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
