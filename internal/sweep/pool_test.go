package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var cur, peak, runs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		if err := p.Go(context.Background(), func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			runs.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if runs.Load() != 50 {
		t.Fatalf("ran %d of 50", runs.Load())
	}
	if pk := peak.Load(); pk > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 slots", pk)
	}
}

func TestPoolGoHonorsContext(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	release := make(chan struct{})
	if err := p.Go(context.Background(), func() { <-release }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Go(ctx, func() {}); err == nil {
		t.Fatal("Go on a full pool with an expiring context returned nil")
	}
	close(release)
}

func TestPoolTryGo(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	if !p.TryGo(func() { <-release }) {
		t.Fatal("TryGo on an empty pool refused")
	}
	if p.TryGo(func() {}) {
		t.Fatal("TryGo on a full pool accepted")
	}
	close(release)
	p.Close()
	if p.TryGo(func() {}) {
		t.Fatal("TryGo on a closed pool accepted")
	}
}

func TestPoolCloseWaitsAndRefuses(t *testing.T) {
	p := NewPool(2)
	var done atomic.Bool
	if err := p.Go(context.Background(), func() {
		time.Sleep(20 * time.Millisecond)
		done.Store(true)
	}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if !done.Load() {
		t.Fatal("Close returned before in-flight work finished")
	}
	if err := p.Go(context.Background(), func() {}); err == nil {
		t.Fatal("Go on a closed pool returned nil")
	}
}

func TestPoolSurvivesPanic(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	if err := p.Go(context.Background(), func() { defer wg.Done(); panic("boom") }); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The slot must have been released despite the panic.
	ran := make(chan struct{})
	if err := p.Go(context.Background(), func() { close(ran) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(time.Second):
		t.Fatal("slot leaked by panicking task")
	}
}
