// Package sweep is a generic worker-pool grid runner for the analytical
// pipeline: every headline artifact (the Figure 6/7 reliability and
// availability grids, the A1–A10 ablations) is a sweep of independent
// CTMC solves over a parameter grid, and this package fans those cells
// out over workers while keeping results deterministic.
//
// Guarantees:
//
//   - Deterministic ordering: results come back indexed by cell, so the
//     output is bit-identical for any worker count (each cell's value
//     depends only on its input, never on scheduling).
//   - Cancellation: when the context is cancelled, Run returns promptly
//     with the longest completed prefix of results, in order.
//   - Panic isolation: a panicking cell poisons only its own result
//     (reported as an error naming the cell), not the process.
//   - Observability: an optional metrics registry gains cells-started /
//     cells-done counters, a live queue-depth gauge, and a cell-duration
//     histogram (see docs/observability.md conventions).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Options tunes a sweep. The zero value runs on NumCPU workers with no
// instrumentation.
type Options struct {
	// Workers is the pool size; 0 or negative selects runtime.NumCPU().
	Workers int
	// Metrics, when non-nil, receives sweep_* instrument families. All
	// instrumentation is nil-safe and costs nothing when absent.
	Metrics *metrics.Registry
	// Name labels this sweep in the metrics (e.g. "figure6"). Empty
	// defaults to "sweep".
	Name string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o Options) name() string {
	if o.Name == "" {
		return "sweep"
	}
	return o.Name
}

// Run evaluates fn(ctx, 0) … fn(ctx, n-1) on a worker pool and returns
// the results in index order. The error is the first cell error (by
// index) or the context error.
//
// On cancellation the returned slice is the longest prefix of cells
// [0, k) that all completed — a partial but correctly-ordered result —
// alongside the context's error. Cells beyond the prefix may also have
// completed; they are discarded so that callers never see a gap.
func Run[T any](ctx context.Context, n int, opt Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers := opt.workers()
	if workers > n {
		workers = n
	}

	reg := opt.Metrics
	name := opt.name()
	started := reg.CounterVec("sweep_cells_started_total", "Sweep cells dispatched to workers.", "sweep").With(name)
	done := reg.CounterVec("sweep_cells_done_total", "Sweep cells completed (cells/sec when rated).", "sweep").With(name)
	depth := reg.GaugeVec("sweep_queue_depth", "Sweep cells not yet completed.", "sweep").With(name)
	durations := reg.Histogram("sweep_cell_seconds", "Per-cell wall time in seconds.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	depth.Set(float64(n))

	results := make([]T, n)
	cellDone := make([]bool, n)
	errs := make([]error, n)

	var (
		mu   sync.Mutex // guards next
		next int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return -1
		}
		i := next
		next++
		return i
	}

	runCell := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("sweep: cell %d panicked: %v", i, r)
			}
		}()
		v, err := fn(ctx, i)
		if err == nil {
			results[i] = v
		}
		return err
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := claim()
				if i < 0 {
					return
				}
				started.Inc()
				t0 := time.Now()
				errs[i] = runCell(i)
				cellDone[i] = errs[i] == nil
				durations.Observe(time.Since(t0).Seconds())
				done.Inc()
				depth.Add(-1)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Longest fully-completed prefix, in order.
		k := 0
		for k < n && cellDone[k] {
			k++
		}
		return results[:k], err
	}
	// First cell error by index wins, so error reporting is as
	// deterministic as the results themselves.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Map evaluates fn over every item on a worker pool, preserving input
// order in the output. It is Run with the indexing handled.
func Map[In, Out any](ctx context.Context, items []In, opt Options, fn func(ctx context.Context, item In) (Out, error)) ([]Out, error) {
	return Run(ctx, len(items), opt, func(ctx context.Context, i int) (Out, error) {
		return fn(ctx, items[i])
	})
}
