package workload

import (
	"math"
	"testing"

	"repro/internal/packet"
	"repro/internal/xrand"
)

func TestAddrPoolDrawsRoutableSpread(t *testing.T) {
	rng := xrand.New(1)
	pool := NewAddrPool(rng, 6, 2)
	counts := make([]int, 6)
	for i := 0; i < 60000; i++ {
		a := pool.Draw()
		lc := EgressOf(a)
		if lc < 0 || lc >= 6 {
			t.Fatalf("address %08x maps to LC %d", a, lc)
		}
		if lc == 2 {
			t.Fatal("excluded LC drawn")
		}
		counts[lc]++
	}
	for lc, c := range counts {
		if lc == 2 {
			continue
		}
		if math.Abs(float64(c)-12000) > 600 {
			t.Fatalf("LC %d drawn %d times, want ~12000", lc, c)
		}
	}
}

func TestAddrPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAddrPool(xrand.New(1), 1, 0)
}

func TestPacketSizeMix(t *testing.T) {
	rng := xrand.New(2)
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[PacketSize(rng)]++
	}
	if len(counts) != 3 {
		t.Fatalf("sizes seen: %v", counts)
	}
	if math.Abs(float64(counts[40])/n-0.5) > 0.01 ||
		math.Abs(float64(counts[576])/n-0.25) > 0.01 ||
		math.Abs(float64(counts[1500])/n-0.25) > 0.01 {
		t.Fatalf("size mix off: %v", counts)
	}
}

func TestPoissonOfferedLoad(t *testing.T) {
	rng := xrand.New(3)
	pool := NewAddrPool(rng, 4, 0)
	var ids uint64
	target := 1.5e9 // bits per unit
	g, err := NewPoisson(rng, pool, 0, packet.ProtoEthernet, target, &ids)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rate() != target {
		t.Fatalf("Rate = %g", g.Rate())
	}
	elapsed, bits := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		dt, p := g.Next()
		if p.SrcLC != 0 || p.DstLC != -1 || p.Proto != packet.ProtoEthernet {
			t.Fatalf("packet fields wrong: %+v", p)
		}
		if EgressOf(p.DstIP) == 0 {
			t.Fatal("hairpin destination drawn")
		}
		elapsed += dt
		bits += float64(p.Bytes * 8)
	}
	got := bits / elapsed
	if math.Abs(got-target)/target > 0.02 {
		t.Fatalf("offered load = %g, want %g", got, target)
	}
	if ids != n {
		t.Fatalf("ids = %d", ids)
	}
}

func TestPoissonValidation(t *testing.T) {
	rng := xrand.New(1)
	pool := NewAddrPool(rng, 2, -1)
	var ids uint64
	if _, err := NewPoisson(rng, pool, 0, packet.ProtoEthernet, 0, &ids); err == nil {
		t.Fatal("zero load accepted")
	}
}

func TestCBRDeterministicSpacing(t *testing.T) {
	rng := xrand.New(4)
	pool := NewAddrPool(rng, 3, -1)
	var ids uint64
	g, err := NewCBR(rng, pool, 1, packet.ProtoSONET, 1e9, 1250, &ids)
	if err != nil {
		t.Fatal(err)
	}
	wantDT := float64(1250*8) / 1e9
	for i := 0; i < 100; i++ {
		dt, p := g.Next()
		if dt != wantDT {
			t.Fatalf("dt = %g, want %g", dt, wantDT)
		}
		if p.Bytes != 1250 {
			t.Fatalf("bytes = %d", p.Bytes)
		}
	}
	if g.Rate() != 1e9 {
		t.Fatalf("Rate = %g", g.Rate())
	}
}

func TestCBRValidation(t *testing.T) {
	rng := xrand.New(1)
	pool := NewAddrPool(rng, 2, -1)
	var ids uint64
	if _, err := NewCBR(rng, pool, 0, packet.ProtoATM, 1, 0, &ids); err == nil {
		t.Fatal("zero packet size accepted")
	}
}

func TestOnOffLongRunRate(t *testing.T) {
	rng := xrand.New(5)
	pool := NewAddrPool(rng, 4, -1)
	var ids uint64
	peak, _ := NewPoisson(rng, pool, 0, packet.ProtoEthernet, 2e9, &ids)
	g, err := NewOnOff(rng, peak, 0.001, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rate() != 1e9 {
		t.Fatalf("Rate = %g, want duty-cycled 1e9", g.Rate())
	}
	elapsed, bits := 0.0, 0.0
	for i := 0; i < 300000; i++ {
		dt, p := g.Next()
		elapsed += dt
		bits += float64(p.Bytes * 8)
	}
	got := bits / elapsed
	if math.Abs(got-1e9)/1e9 > 0.05 {
		t.Fatalf("on-off long-run rate = %g, want ~1e9", got)
	}
}

func TestOnOffValidation(t *testing.T) {
	rng := xrand.New(1)
	pool := NewAddrPool(rng, 2, -1)
	var ids uint64
	peak, _ := NewPoisson(rng, pool, 0, packet.ProtoEthernet, 1, &ids)
	if _, err := NewOnOff(rng, peak, 0, 1); err == nil {
		t.Fatal("zero on period accepted")
	}
}

func TestRoutesCoverAllLCs(t *testing.T) {
	rs := Routes(5)
	if len(rs) != 5 {
		t.Fatalf("len = %d", len(rs))
	}
	for lc, r := range rs {
		if r.NextLC != lc || r.Len != 8 || r.Addr != PrefixFor(lc) {
			t.Fatalf("route %d wrong: %+v", lc, r)
		}
	}
}
