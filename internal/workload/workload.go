// Package workload generates the synthetic traffic used by the executable
// router model. The paper's performance analysis assumes uniform loads L
// in [0.15, 0.7] of each LC's capacity, citing measured Internet link
// utilizations; these generators realize that assumption as packet
// processes (Poisson and CBR) and an on-off process for burstier
// ablations.
package workload

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/xrand"
)

// Generator produces the next packet arrival for one ingress LC.
type Generator interface {
	// Next returns the inter-arrival time to the next packet (in the same
	// time unit as rates were configured in) and the packet itself (with
	// SrcLC/Proto/Bytes/DstIP filled in; DstLC is left to the LFE). The
	// packet comes from the packet pool: ownership transfers to the
	// caller, which must packet.Release it when its journey ends.
	Next() (dt float64, p *packet.Packet)
	// Rate returns the long-run offered load in bits per time unit.
	Rate() float64
}

// AddrPool draws destination addresses that are guaranteed to resolve via
// the route set installed by Routes: each egress LC lc owns the /8 prefix
// (10+lc).0.0.0/8.
type AddrPool struct {
	rng     *xrand.Source
	numLCs  int
	exclude int
}

// NewAddrPool builds a pool whose addresses spread uniformly over the
// egress LCs 0..numLCs-1, excluding the LC with index exclude (a router
// does not normally hairpin traffic back out the ingress card; pass -1 to
// allow all).
func NewAddrPool(rng *xrand.Source, numLCs, exclude int) *AddrPool {
	if numLCs <= 0 || (exclude >= 0 && numLCs == 1) {
		panic("workload: address pool needs at least one eligible egress LC")
	}
	return &AddrPool{rng: rng, numLCs: numLCs, exclude: exclude}
}

// PrefixFor returns the /8 network address owned by egress LC lc.
func PrefixFor(lc int) uint32 { return uint32(10+lc) << 24 }

// Draw returns a routable destination address.
func (a *AddrPool) Draw() uint32 {
	for {
		lc := a.rng.Intn(a.numLCs)
		if lc == a.exclude {
			continue
		}
		host := uint32(a.rng.Uint64()) & 0x00ffffff
		return PrefixFor(lc) | host
	}
}

// EgressOf returns the egress LC owning addr under the AddrPool scheme,
// for assertions in tests.
func EgressOf(addr uint32) int { return int(addr>>24) - 10 }

// PacketSize models a simple trimodal Internet packet-size mix: 40-byte
// minimum (ACKs), 576-byte, and 1500-byte MTU packets in roughly the
// proportions long observed on backbone links.
func PacketSize(rng *xrand.Source) int {
	u := rng.Float64()
	switch {
	case u < 0.5:
		return 40
	case u < 0.75:
		return 576
	default:
		return 1500
	}
}

// meanPacketBits is the mean size of PacketSize in bits, used to convert a
// target bit rate into a packet rate.
const meanPacketBits = (0.5*40 + 0.25*576 + 0.25*1500) * 8

// Poisson is a Poisson packet-arrival generator targeting a fixed offered
// load in bits per time unit.
type Poisson struct {
	rng    *xrand.Source
	pool   *AddrPool
	srcLC  int
	proto  packet.Protocol
	bitsPS float64
	pktPS  float64
	nextID *uint64
}

// NewPoisson creates a Poisson generator for ingress LC srcLC offering
// load×capacity bits per time unit. ids provides unique packet IDs shared
// across generators.
func NewPoisson(rng *xrand.Source, pool *AddrPool, srcLC int, proto packet.Protocol, bitsPerUnit float64, ids *uint64) (*Poisson, error) {
	if bitsPerUnit <= 0 {
		return nil, fmt.Errorf("workload: offered load must be positive, got %g", bitsPerUnit)
	}
	return &Poisson{
		rng:    rng,
		pool:   pool,
		srcLC:  srcLC,
		proto:  proto,
		bitsPS: bitsPerUnit,
		pktPS:  bitsPerUnit / meanPacketBits,
		nextID: ids,
	}, nil
}

// Rate implements Generator.
func (g *Poisson) Rate() float64 { return g.bitsPS }

// Next implements Generator.
func (g *Poisson) Next() (float64, *packet.Packet) {
	dt := g.rng.Exp(g.pktPS)
	*g.nextID++
	p := packet.Get()
	p.ID = *g.nextID
	p.SrcLC = g.srcLC
	p.DstIP = g.pool.Draw()
	p.DstLC = -1
	p.Proto = g.proto
	p.Bytes = PacketSize(g.rng)
	return dt, p
}

// CBR is a constant-bit-rate generator: fixed-size packets at fixed
// spacing. Deterministic arrivals make conservation tests exact.
type CBR struct {
	rng    *xrand.Source
	pool   *AddrPool
	srcLC  int
	proto  packet.Protocol
	bitsPS float64
	bytes  int
	nextID *uint64
}

// NewCBR creates a CBR generator with the given packet size in bytes.
func NewCBR(rng *xrand.Source, pool *AddrPool, srcLC int, proto packet.Protocol, bitsPerUnit float64, pktBytes int, ids *uint64) (*CBR, error) {
	if bitsPerUnit <= 0 || pktBytes <= 0 {
		return nil, fmt.Errorf("workload: CBR needs positive rate and packet size")
	}
	return &CBR{rng: rng, pool: pool, srcLC: srcLC, proto: proto, bitsPS: bitsPerUnit, bytes: pktBytes, nextID: ids}, nil
}

// Rate implements Generator.
func (g *CBR) Rate() float64 { return g.bitsPS }

// Next implements Generator.
func (g *CBR) Next() (float64, *packet.Packet) {
	dt := float64(g.bytes*8) / g.bitsPS
	*g.nextID++
	p := packet.Get()
	p.ID = *g.nextID
	p.SrcLC = g.srcLC
	p.DstIP = g.pool.Draw()
	p.DstLC = -1
	p.Proto = g.proto
	p.Bytes = g.bytes
	return dt, p
}

// OnOff is a two-state MMPP-style generator: exponential on and off
// periods; Poisson arrivals at peak rate during on periods. Its long-run
// rate is peak·on/(on+off).
type OnOff struct {
	rng      *xrand.Source
	inner    *Poisson
	onMean   float64
	offMean  float64
	inOn     bool
	leftInOn float64
}

// NewOnOff wraps a Poisson generator that fires only during on periods.
// meanOn and meanOff are the mean sojourn times of the two states.
func NewOnOff(rng *xrand.Source, peak *Poisson, meanOn, meanOff float64) (*OnOff, error) {
	if meanOn <= 0 || meanOff < 0 {
		return nil, fmt.Errorf("workload: on/off periods must be positive")
	}
	return &OnOff{rng: rng, inner: peak, onMean: meanOn, offMean: meanOff, inOn: true, leftInOn: rng.Exp(1 / meanOn)}, nil
}

// Rate implements Generator.
func (g *OnOff) Rate() float64 {
	return g.inner.Rate() * g.onMean / (g.onMean + g.offMean)
}

// Next implements Generator.
func (g *OnOff) Next() (float64, *packet.Packet) {
	elapsed := 0.0
	for {
		dt, p := g.inner.Next()
		if dt <= g.leftInOn {
			g.leftInOn -= dt
			return elapsed + dt, p
		}
		// The on period expires before the arrival: burn the remaining
		// on time, a whole off period, and start a new on period.
		elapsed += g.leftInOn + g.rng.Exp(1/g.offMean)
		g.leftInOn = g.rng.Exp(1 / g.onMean)
	}
}

// Routes returns the route set matching the AddrPool addressing scheme for
// a router with numLCs linecards.
func Routes(numLCs int) []RouteSpec {
	out := make([]RouteSpec, numLCs)
	for lc := 0; lc < numLCs; lc++ {
		out[lc] = RouteSpec{Addr: PrefixFor(lc), Len: 8, NextLC: lc}
	}
	return out
}

// RouteSpec is a plain route description, kept free of the forwarding
// package so workload has no dependency on it.
type RouteSpec struct {
	Addr   uint32
	Len    int
	NextLC int
}
