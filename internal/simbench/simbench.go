// Package simbench measures the DES core hot paths — the rare-event
// Monte Carlo loop, the fault-free packet delivery path, and raw
// scheduler ops — and reports them against the pre-rewrite seed
// baseline. It backs `dractl bench -mode simcore` and the
// BENCH_simcore.json artifact.
package simbench

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Seed-baseline numbers, measured at the commit immediately before the
// zero-alloc simcore rewrite (binary-heap scheduler, per-event closure
// allocation, unpooled packets) on the same workloads below.
const (
	seedRareEventNsPerOp     = 1.67e6 // 200 regenerative cycles, N=9 M=4
	seedRareEventNsPerEv     = 3544
	seedRareEventEvPerSec    = 282e3
	seedRareEventAllocsPerEv = 34.7
	seedDeliverNsPerOp       = 1058
	seedDeliverAllocsPerOp   = 2
	seedDeliverBytesPerOp    = 1692
	seedSchedulerNsPerOp     = 66.6
	seedSchedulerAllocsPerOp = 1
)

// Metric is one benchmark's outcome.
type Metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// EventsPerSec and NsPerEvent are set only for benchmarks that
	// process kernel events (the rare-event loop).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	NsPerEvent   float64 `json:"ns_per_event,omitempty"`
	// AllocsPerEvent amortizes per-op allocations (replication setup)
	// over the events each op processes.
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
}

// Comparison pairs a seed-baseline metric with the current measurement.
type Comparison struct {
	Name    string  `json:"name"`
	Before  Metric  `json:"before"`
	After   Metric  `json:"after"`
	Speedup float64 `json:"speedup"` // before.NsPerOp / after.NsPerOp
}

// Report is the BENCH_simcore.json document.
type Report struct {
	Mode       string       `json:"mode"` // "simcore"
	Scheduler  string       `json:"scheduler"`
	Benchmarks []Comparison `json:"benchmarks"`
	// SteadyStateAllocs summarizes the AllocsPerRun gates that pin the
	// warm hot paths (see internal/*/allocs_test.go); all must be zero.
	SteadyStateAllocs map[string]float64 `json:"steady_state_allocs"`
}

// rareEventCycles runs the exact hot loop of montecarlo's
// unavailability estimator: one router, balanced failure biasing,
// `cycles` regenerative cycles. Returns kernel events processed.
func rareEventCycles(seed uint64, cycles int) uint64 {
	const (
		n        = 9
		m        = 4
		targetLC = 0
	)
	src := xrand.New(seed)
	cfg := router.UniformConfig(0, n, m) // DRA
	cfg.Source = src
	r, err := router.New(cfg)
	if err != nil {
		panic(err)
	}
	r.InstallUniformRoutes()
	inj, err := router.NewInjector(r, router.PaperRates(1.0/3))
	if err != nil {
		panic(err)
	}
	b := router.Biasing{Enabled: true}
	b.StopWhen = func() bool { return !r.CanDeliverCached(targetLC) }
	if err := inj.SetBiasing(b); err != nil {
		panic(err)
	}
	inj.Start()
	k := r.Kernel()
	done := 0
	repairs := inj.Repairs
	wentDown := false
	for done < cycles {
		if !k.Step() {
			break
		}
		if !wentDown && !r.CanDeliverCached(targetLC) {
			wentDown = true
		}
		if inj.Repairs != repairs {
			repairs = inj.Repairs
			inj.CheckpointLR()
			done++
			wentDown = false
		}
	}
	return k.Processed
}

func toMetric(r testing.BenchmarkResult) Metric {
	return Metric{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
}

// RunRareEvent benchmarks 200 regenerative rare-event cycles per op.
func RunRareEvent() Metric {
	var events, ops uint64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		events, ops = 0, 0
		for i := 0; i < b.N; i++ {
			events += rareEventCycles(uint64(i)+1, 200)
			ops++
		}
	})
	m := toMetric(res)
	if ops > 0 && events > 0 {
		perOp := float64(events) / float64(ops)
		m.NsPerEvent = m.NsPerOp / perOp
		m.EventsPerSec = 1e9 / m.NsPerEvent
		m.AllocsPerEvent = m.AllocsPerOp / perOp
	}
	return m
}

// RunDeliver benchmarks the fault-free packet path: lookup,
// segmentation, fabric transfer, reassembly.
func RunDeliver() Metric {
	r, err := router.New(router.UniformConfig(0, 9, 4))
	if err != nil {
		panic(err)
	}
	r.InstallUniformRoutes()
	p := packet.Get()
	defer packet.Release(p)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst := (i*7)%8 + 1
			*p = packet.Packet{
				ID:    uint64(i),
				SrcLC: i % 9,
				DstIP: workload.PrefixFor(dst) | 1,
				DstLC: -1,
				Bytes: 1500,
			}
			rep := r.Deliver(p)
			if rep.Kind == router.PathDropped {
				b.Fatalf("dropped: %s", rep.DropReason)
			}
		}
	})
	return toMetric(res)
}

// RunScheduler benchmarks a schedule+pop cycle through the kernel.
func RunScheduler() Metric {
	k := sim.NewKernel()
	fn := func() {}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k.Schedule(k.Now()+1, fn)
			k.Step()
		}
	})
	return toMetric(res)
}

// steadyStateAllocs re-measures the warm-path AllocsPerRun gates so the
// report carries live numbers, not just the test wall's pass/fail.
func steadyStateAllocs() map[string]float64 {
	out := make(map[string]float64)

	// Pool cycle.
	for i := 0; i < 64; i++ {
		packet.Release(packet.Get())
	}
	out["packet_pool_cycle"] = testing.AllocsPerRun(200, func() {
		p := packet.Get()
		p.Bytes = 1500
		packet.Release(p)
	})

	// Scheduler hold model: pop one, push one, at stationary population.
	k := sim.NewKernel()
	var fire func()
	fire = func() { k.After(1, fire) }
	k.After(1, fire)
	for i := 0; i < 100; i++ {
		k.Step()
	}
	out["scheduler_hold"] = testing.AllocsPerRun(200, func() { k.Step() })

	// Steady-state Deliver.
	r, err := router.New(router.UniformConfig(0, 6, 3))
	if err != nil {
		panic(err)
	}
	r.InstallUniformRoutes()
	p := packet.Get()
	defer packet.Release(p)
	id := uint64(0)
	deliver := func() {
		id++
		*p = packet.Packet{
			ID:    id,
			SrcLC: 0,
			DstIP: workload.PrefixFor(1) | 0x123,
			DstLC: -1,
			Proto: packet.ProtoEthernet,
			Bytes: 1500,
		}
		if rep := r.Deliver(p); rep.Kind == router.PathDropped {
			panic("dropped: " + rep.DropReason)
		}
	}
	for i := 0; i < 48; i++ {
		deliver()
	}
	out["router_deliver"] = testing.AllocsPerRun(200, deliver)
	return out
}

// Run executes the full simcore suite and assembles the report.
func Run() Report {
	rare := RunRareEvent()
	del := RunDeliver()
	sched := RunScheduler()
	return Report{
		Mode:      "simcore",
		Scheduler: "hybrid (heap<=1024 events, calendar queue above)",
		Benchmarks: []Comparison{
			{
				Name: "rare_event_200_cycles",
				Before: Metric{
					NsPerOp:        seedRareEventNsPerOp,
					EventsPerSec:   seedRareEventEvPerSec,
					NsPerEvent:     seedRareEventNsPerEv,
					AllocsPerEvent: seedRareEventAllocsPerEv,
				},
				After:   rare,
				Speedup: seedRareEventNsPerOp / rare.NsPerOp,
			},
			{
				Name: "deliver_fault_free",
				Before: Metric{
					NsPerOp:     seedDeliverNsPerOp,
					AllocsPerOp: seedDeliverAllocsPerOp,
					BytesPerOp:  seedDeliverBytesPerOp,
				},
				After:   del,
				Speedup: seedDeliverNsPerOp / del.NsPerOp,
			},
			{
				Name: "scheduler_push_pop",
				Before: Metric{
					NsPerOp:     seedSchedulerNsPerOp,
					AllocsPerOp: seedSchedulerAllocsPerOp,
				},
				After:   sched,
				Speedup: seedSchedulerNsPerOp / sched.NsPerOp,
			},
		},
		SteadyStateAllocs: steadyStateAllocs(),
	}
}
