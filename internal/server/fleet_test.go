package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/store"
)

// fleetServer boots a coordinator-mode server: external manager, fleet
// coordinator, fleet routes mounted.
func fleetServer(t *testing.T, probe func() error) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := jobs.NewManager(jobs.Options{
		Store: st, External: true, Dir: t.TempDir(),
		Runners: map[string]jobs.Runner{config.KindReliability: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	coord := fleet.New(fleet.Options{Backend: mgr})
	srv, err := New(Options{
		Manager: mgr, Metrics: metrics.NewRegistry(),
		Fleet: coord, StoreProbe: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, mgr
}

func TestFleetProtocolOverHTTP(t *testing.T) {
	ts, mgr := fleetServer(t, nil)

	// Register.
	resp, body := post(t, ts.URL+"/v1/fleet/register", `{"worker":"w1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var reg fleet.RegisterResponse
	json.Unmarshal(body, &reg)
	if reg.LeaseTTLMs <= 0 || reg.HeartbeatMs <= 0 {
		t.Fatalf("register response %+v", reg)
	}

	// Claim with an empty queue: 204.
	resp, _ = post(t, ts.URL+"/v1/fleet/claim", `{"worker":"w1"}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("empty claim: %d, want 204", resp.StatusCode)
	}

	// Submit a job (202: external mode queues, nothing runs locally),
	// then claim it.
	resp, body = post(t, ts.URL+"/v1/jobs", specBody(41))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	json.Unmarshal(body, &snap)

	resp, body = post(t, ts.URL+"/v1/fleet/claim", `{"worker":"w1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim: %d %s", resp.StatusCode, body)
	}
	var a fleet.Assignment
	json.Unmarshal(body, &a)
	if a.Lease == "" || a.Job != snap.ID {
		t.Fatalf("assignment %+v", a)
	}

	// Renew, then complete.
	resp, body = post(t, ts.URL+"/v1/fleet/renew",
		`{"worker":"w1","lease":"`+a.Lease+`","note":"reps 5/10"}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("renew: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/fleet/complete",
		`{"worker":"w1","lease":"`+a.Lease+`","result":{"est":0.5}}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("complete: %d %s", resp.StatusCode, body)
	}
	got, _ := mgr.Get(snap.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("job state %s", got.State)
	}

	// A second renew of the settled lease: 410 Gone.
	resp, _ = post(t, ts.URL+"/v1/fleet/renew", `{"worker":"w1","lease":"`+a.Lease+`"}`)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale renew: %d, want 410", resp.StatusCode)
	}

	// Status endpoint.
	resp, body = get(t, ts.URL+"/v1/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var st fleet.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.WorkersLive != 1 || st.Degraded {
		t.Fatalf("status %+v", st)
	}
}

func TestHealthzReportsFleetAndStorage(t *testing.T) {
	ts, _ := fleetServer(t, nil)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	var h map[string]any
	json.Unmarshal(body, &h)
	if h["fleet_degraded"] != true || h["storage_ok"] != true {
		t.Fatalf("zero-worker coordinator should be degraded but ready: %v", h)
	}

	// A worker registering clears the degraded flag.
	post(t, ts.URL+"/v1/fleet/register", `{"worker":"w1"}`)
	_, body = get(t, ts.URL+"/healthz")
	json.Unmarshal(body, &h)
	if h["fleet_degraded"] != false || h["fleet_workers"] != float64(1) {
		t.Fatalf("registered worker not reflected: %v", h)
	}
}

func TestHealthzStorageFailureIs503(t *testing.T) {
	ts, _ := fleetServer(t, func() error { return errors.New("disk full") })
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with failing store probe: %d %s", resp.StatusCode, body)
	}
	var h map[string]any
	json.Unmarshal(body, &h)
	if h["storage_ok"] != false || h["ok"] != false || h["storage_error"] != "disk full" {
		t.Fatalf("body %v", h)
	}
}

func TestFleetRoutesUnmountedStandalone(t *testing.T) {
	ts, _ := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: instantRunner(nil)}})
	resp, _ := post(t, ts.URL+"/v1/fleet/claim", `{"worker":"w1"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("standalone fleet route: %d, want 404", resp.StatusCode)
	}
}
