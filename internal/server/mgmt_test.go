package server

// Management-plane HTTP walls: authentication and role gates, the
// per-tenant quota refusal contract (429 + Retry-After + cause
// "tenant_quota", distinct from the global "busy" and outranked by
// drain's 503), live config commit/rollback, the audit endpoint, and
// job-list paging/filtering.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/mgmt"
	"repro/internal/store"
)

// mgmtServer boots a manager + management plane + server, all wired the
// way cmd/drad wires them: the plane first so the scheduler's quota and
// weight hooks are bound before recovery can dispatch, Apply late-bound
// to ApplyLimits.
func mgmtServer(t *testing.T, allowAnon bool, mopt jobs.Options) (*httptest.Server, *jobs.Manager, *mgmt.Manager) {
	t.Helper()
	if mopt.Store == nil {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mopt.Store = st
	}
	var mgr *jobs.Manager
	mg, err := mgmt.New(mgmt.Options{
		Dir:            t.TempDir(),
		AllowAnonymous: allowAnon,
		Defaults:       mgmt.Config{MaxQueued: mopt.MaxQueued, ClassLimits: mopt.ClassLimits},
		Metrics:        metrics.NewRegistry(),
		Apply: func(cfg mgmt.Config) {
			mgr.ApplyLimits(cfg.MaxQueued, cfg.ClassLimits)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mopt.Quota = mg.AdmitSubmit
	mopt.TenantWeight = mg.TenantWeight
	mgr, err = jobs.NewManager(mopt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mg.Close() })
	srv, err := New(Options{Manager: mgr, Metrics: metrics.NewRegistry(), Mgmt: mg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, mgr, mg
}

// doAuth issues a request with an optional bearer token.
func doAuth(t *testing.T, method, url, token, body string) (*http.Response, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// mintKey creates a key via the API using admin credentials.
func mintKey(t *testing.T, base, adminToken, tenant, role string) string {
	t.Helper()
	resp, body := doAuth(t, http.MethodPost, base+"/v1/keys", adminToken,
		fmt.Sprintf(`{"tenant": %q, "role": %q}`, tenant, role))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("key create: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Token string `json:"token"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Token
}

// TestAuthRequiredAndRoleGates: with the anonymous door closed every
// route wants a key, and each role stops exactly where its rank ends.
func TestAuthRequiredAndRoleGates(t *testing.T) {
	ts, _, mg := mgmtServer(t, false, jobs.Options{
		MaxQueued: 16,
		Runners:   map[string]jobs.Runner{config.KindReliability: instantRunner(nil)},
	})

	// No credentials → 401 on the job API.
	resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/jobs", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous list with door closed: %d", resp.StatusCode)
	}
	resp, _ = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", "", specBody(1))
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous submit with door closed: %d", resp.StatusCode)
	}
	// Garbage token → 401 too.
	resp, _ = doAuth(t, http.MethodGet, ts.URL+"/v1/jobs", "drak_bogus", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bogus token: %d", resp.StatusCode)
	}

	// Bootstrap an admin key directly on the keystore (what drad's
	// bootstrap path does), then mint the rest over HTTP.
	_, adminTok, err := mg.Keys().Create("ops", mgmt.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	readerTok := mintKey(t, ts.URL, adminTok, "acme", "reader")
	operatorTok := mintKey(t, ts.URL, adminTok, "acme", "operator")

	// Reader: can list, cannot submit, cannot read audit.
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/jobs", readerTok, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("reader list: %d", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", readerTok, specBody(2)); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("reader submit: %d, want 403", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/audit", readerTok, ""); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("reader audit: %d, want 403", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/config", readerTok, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("reader config show: %d, want 200", resp.StatusCode)
	}

	// Operator: can submit and cancel, cannot manage keys or commit.
	resp, body := doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", operatorTok, specBody(3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("operator submit: %d %s", resp.StatusCode, body)
	}
	if resp, _ := doAuth(t, http.MethodPost, ts.URL+"/v1/keys", operatorTok, `{"tenant":"x"}`); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("operator key create: %d, want 403", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodPost, ts.URL+"/v1/config/commit", operatorTok, "{}"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("operator commit: %d, want 403", resp.StatusCode)
	}

	// Admin: full surface.
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/audit", adminTok, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin audit: %d", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/keys", adminTok, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin key list: %d", resp.StatusCode)
	}
}

// TestTenantQuota429Distinct is the satellite regression wall: a
// tenant-quota refusal is a 429 with Retry-After and cause
// "tenant_quota"; the global queue-full refusal is a 429 with cause
// "busy"; and a draining server answers 503 even to an over-quota
// tenant (drain wins).
func TestTenantQuota429Distinct(t *testing.T) {
	release := make(chan struct{})
	blocker := func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	}
	ts, mgr, mg := mgmtServer(t, true, jobs.Options{
		Workers:   1,
		MaxQueued: 3,
		Runners:   map[string]jobs.Runner{config.KindReliability: blocker},
	})
	defer close(release)

	// Tenant "capped" may hold at most 1 queued job.
	_, adminTok, err := mg.Keys().Create("ops", mgmt.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	cappedTok := mintKey(t, ts.URL, adminTok, "capped", "operator")
	if err := mg.Conf().Set("tenants.capped.quota.max_queued", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Commit(mgmt.Identity{Role: mgmt.RoleAdmin}); err != nil {
		t.Fatal(err)
	}

	// First submit occupies the worker; the tenant's queued count is 0
	// again once it is claimed, so queue a second that stays queued.
	resp, body := doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", cappedTok, specBody(10))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", resp.StatusCode, body)
	}
	waitForRunning(t, mgr)
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", cappedTok, specBody(11))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: %d %s", resp.StatusCode, body)
	}

	// Third submit: over the tenant cap → 429 tenant_quota.
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", cappedTok, specBody(12))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant-quota 429 missing Retry-After")
	}
	var apiBody struct {
		Error string `json:"error"`
		Cause string `json:"cause"`
	}
	if err := json.Unmarshal(body, &apiBody); err != nil {
		t.Fatal(err)
	}
	if apiBody.Cause != "tenant_quota" {
		t.Fatalf("cause = %q, want tenant_quota (%s)", apiBody.Cause, body)
	}

	// The anonymous tenant is not capped, so it can fill the global
	// queue; the refusal there is the distinct "busy" cause.
	if resp, body := doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", "", specBody(13)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("anon submit: %d %s", resp.StatusCode, body)
	}
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", "", specBody(14))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("global-full submit: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("busy 429 missing Retry-After")
	}
	apiBody.Cause = ""
	json.Unmarshal(body, &apiBody)
	if apiBody.Cause != "busy" {
		t.Fatalf("cause = %q, want busy (%s)", apiBody.Cause, body)
	}

	// Drain outranks both: the same over-quota tenant now gets 503.
	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	go mgr.Drain(dctx)
	waitFor(t, func() bool { return mgr.Draining() })
	resp, _ = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", cappedTok, specBody(15))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", resp.StatusCode)
	}
}

// waitForRunning waits until the manager has claimed at least one job.
func waitForRunning(t *testing.T, mgr *jobs.Manager) {
	t.Helper()
	waitFor(t, func() bool { return mgr.Running() > 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestConfigCommitLiveApply: a committed candidate retunes the running
// scheduler without a restart, and rollback restores the old behavior.
func TestConfigCommitLiveApply(t *testing.T) {
	release := make(chan struct{})
	blocker := func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	}
	ts, mgr, _ := mgmtServer(t, true, jobs.Options{
		Workers:   1,
		MaxQueued: 8,
		Runners:   map[string]jobs.Runner{config.KindReliability: blocker},
	})
	defer close(release)

	// Tighten max_queued (admitted-but-unfinished jobs) to 2 via the
	// HTTP config surface.
	resp, body := doAuth(t, http.MethodPost, ts.URL+"/v1/config/set", "", `{"path":"max_queued","value":"2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config set: %d %s", resp.StatusCode, body)
	}
	resp, body = doAuth(t, http.MethodGet, ts.URL+"/v1/config/diff", "", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("max_queued")) {
		t.Fatalf("diff: %d %s", resp.StatusCode, body)
	}
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/config/commit", "", "{}")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: %d %s", resp.StatusCode, body)
	}
	var cfg mgmt.Config
	json.Unmarshal(body, &cfg)
	if cfg.Version != 1 || cfg.MaxQueued != 2 {
		t.Fatalf("committed config %+v", cfg)
	}

	// The live scheduler honors the new bound: one running plus one
	// queued job exhausts it, and the next submit refuses with busy —
	// no restart involved.
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", "", specBody(100))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit (runs): %d %s", resp.StatusCode, body)
	}
	waitForRunning(t, mgr)
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", "", specBody(101))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit (queues): %d %s", resp.StatusCode, body)
	}
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", "", specBody(102))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over tightened bound: %d %s, want 429", resp.StatusCode, body)
	}

	// Rollback → version 0, original bound restored.
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/config/rollback", "", "{}")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: %d %s", resp.StatusCode, body)
	}
	cfg = mgmt.Config{}
	json.Unmarshal(body, &cfg)
	if cfg.Version != 0 || cfg.MaxQueued != 8 {
		t.Fatalf("rollback config %+v", cfg)
	}
	resp, body = doAuth(t, http.MethodGet, ts.URL+"/v1/config", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config show: %d", resp.StatusCode)
	}
	cfg = mgmt.Config{}
	json.Unmarshal(body, &cfg)
	if cfg.MaxQueued != 8 {
		t.Fatalf("running config after rollback %+v", cfg)
	}

	// Behavioral restoration: the submit that was refused under the
	// tightened bound is admitted again.
	resp, body = doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", "", specBody(102))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after rollback: %d %s", resp.StatusCode, body)
	}
}

// TestAuditEndpointRecordsActions: submits and cancels land in the
// audit log with tenant attribution, queryable over HTTP.
func TestAuditEndpointRecordsActions(t *testing.T) {
	ts, mgr, mg := mgmtServer(t, true, jobs.Options{
		MaxQueued: 16,
		Runners:   map[string]jobs.Runner{config.KindReliability: instantRunner(nil)},
	})
	_, adminTok, err := mg.Keys().Create("ops", mgmt.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	acmeTok := mintKey(t, ts.URL, adminTok, "acme", "operator")

	resp, body := doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", acmeTok, specBody(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	json.Unmarshal(body, &snap)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := mgr.Wait(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}

	resp, body = doAuth(t, http.MethodGet, ts.URL+"/v1/audit?tenant=acme&verb=submit", adminTok, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit query: %d %s", resp.StatusCode, body)
	}
	var entries []mgmt.Entry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Job != snap.ID || entries[0].Outcome != "ok" {
		t.Fatalf("audit entries %+v", entries)
	}

	// The key mint is audited too (verb keys, by the admin's tenant).
	resp, body = doAuth(t, http.MethodGet, ts.URL+"/v1/audit?verb=keys", adminTok, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit keys query: %d", resp.StatusCode)
	}
	entries = nil
	json.Unmarshal(body, &entries)
	if len(entries) != 1 || entries[0].Tenant != "ops" {
		t.Fatalf("keys audit %+v", entries)
	}
}

// TestListPagingAndTenantScope: ?limit/?since/?tenant behave, and a
// non-admin key is always scoped to its own tenant.
func TestListPagingAndTenantScope(t *testing.T) {
	ts, mgr, mg := mgmtServer(t, true, jobs.Options{
		MaxQueued: 32,
		Runners:   map[string]jobs.Runner{config.KindReliability: instantRunner(nil)},
	})
	_, adminTok, err := mg.Keys().Create("ops", mgmt.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	acmeTok := mintKey(t, ts.URL, adminTok, "acme", "operator")
	otherTok := mintKey(t, ts.URL, adminTok, "other", "operator")

	ids := map[string][]string{}
	for i, tok := range []string{acmeTok, acmeTok, otherTok} {
		resp, body := doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", tok, specBody(uint64(20+i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		var snap jobs.Snapshot
		json.Unmarshal(body, &snap)
		ids[snap.Tenant] = append(ids[snap.Tenant], snap.ID)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := mgr.Wait(ctx, snap.ID); err != nil {
			t.Fatal(err)
		}
		cancel()
	}

	decode := func(body []byte) []jobs.Snapshot {
		var out []jobs.Snapshot
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Admin sees everything; limit caps newest-first.
	_, body := doAuth(t, http.MethodGet, ts.URL+"/v1/jobs", adminTok, "")
	if got := decode(body); len(got) != 3 {
		t.Fatalf("admin list = %d jobs", len(got))
	}
	_, body = doAuth(t, http.MethodGet, ts.URL+"/v1/jobs?limit=2", adminTok, "")
	if got := decode(body); len(got) != 2 {
		t.Fatalf("limit=2 returned %d", len(got))
	}
	// Tenant filter for admin.
	_, body = doAuth(t, http.MethodGet, ts.URL+"/v1/jobs?tenant=other", adminTok, "")
	got := decode(body)
	if len(got) != 1 || got[0].Tenant != "other" {
		t.Fatalf("tenant filter %+v", got)
	}
	// Non-admin scoping: acme asking for ?tenant=other still only sees
	// its own jobs.
	_, body = doAuth(t, http.MethodGet, ts.URL+"/v1/jobs?tenant=other", acmeTok, "")
	got = decode(body)
	if len(got) != 2 {
		t.Fatalf("scoped list = %d jobs, want acme's 2", len(got))
	}
	for _, s := range got {
		if s.Tenant != "acme" {
			t.Fatalf("tenant scope leak: %+v", s)
		}
	}
	// since excludes everything older than now.
	_, body = doAuth(t, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs?since=%d", ts.URL, time.Now().Add(time.Minute).UnixMilli()), adminTok, "")
	if got := decode(body); len(got) != 0 {
		t.Fatalf("future since returned %d jobs", len(got))
	}
}

// TestCrossTenantJobIsolation: job IDs are content-addressed and thus
// guessable, so the by-ID endpoints (status, result, events, cancel)
// must enforce tenant ownership, not just the verb — another tenant's
// key, operator or reader, gets a 404 (not a 403, which would leak
// existence), while the owner and an admin key retain full access.
func TestCrossTenantJobIsolation(t *testing.T) {
	ts, mgr, mg := mgmtServer(t, true, jobs.Options{
		MaxQueued: 16,
		Runners:   map[string]jobs.Runner{config.KindReliability: instantRunner(nil)},
	})
	_, adminTok, err := mg.Keys().Create("ops", mgmt.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	acmeTok := mintKey(t, ts.URL, adminTok, "acme", "operator")
	otherTok := mintKey(t, ts.URL, adminTok, "other", "operator")
	otherReaderTok := mintKey(t, ts.URL, adminTok, "other", "reader")

	// acme submits and finishes a job; its ID is now derivable by anyone
	// holding the same spec.
	resp, body := doAuth(t, http.MethodPost, ts.URL+"/v1/jobs", acmeTok, specBody(77))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	json.Unmarshal(body, &snap)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := mgr.Wait(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}

	// Another tenant's keys bounce off every by-ID route with 404 —
	// except the reader's DELETE, which the verb gate already refuses
	// with 403 before ownership is consulted (role refusals leak no
	// per-job information).
	for _, tok := range []string{otherTok, otherReaderTok} {
		for _, ep := range []struct{ method, path string }{
			{http.MethodGet, "/v1/jobs/" + snap.ID},
			{http.MethodGet, "/v1/jobs/" + snap.ID + "/result"},
			{http.MethodGet, "/v1/jobs/" + snap.ID + "/events"},
		} {
			resp, body := doAuth(t, ep.method, ts.URL+ep.path, tok, "")
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("%s %s as foreign tenant: %d %s, want 404", ep.method, ep.path, resp.StatusCode, body)
			}
		}
	}
	if resp, body := doAuth(t, http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, otherTok, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign operator cancel: %d %s, want 404", resp.StatusCode, body)
	}
	if resp, _ := doAuth(t, http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, otherReaderTok, ""); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("foreign reader cancel: %d, want 403 from the verb gate", resp.StatusCode)
	}

	// The owner reads its own status and result; admin reads everything.
	for _, tok := range []string{acmeTok, adminTok} {
		if resp, body := doAuth(t, http.MethodGet, ts.URL+"/v1/jobs/"+snap.ID, tok, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("owner/admin status: %d %s", resp.StatusCode, body)
		}
		if resp, body := doAuth(t, http.MethodGet, ts.URL+"/v1/jobs/"+snap.ID+"/result", tok, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("owner/admin result: %d %s", resp.StatusCode, body)
		}
	}
	// Cancel of a terminal job is a no-op 200 — but only for the owner
	// or an admin.
	if resp, body := doAuth(t, http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, acmeTok, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner cancel: %d %s", resp.StatusCode, body)
	}
}

// TestMgmtHandlerSurface sweeps the remaining management endpoints:
// key revocation, the candidate document (GET and full PUT), bad
// config-set paths, audit query parameter validation, and RFC3339
// since values on the job list.
func TestMgmtHandlerSurface(t *testing.T) {
	ts, _, mg := mgmtServer(t, true, jobs.Options{
		MaxQueued: 8,
		Runners:   map[string]jobs.Runner{config.KindReliability: instantRunner(nil)},
	})
	_, adminTok, err := mg.Keys().Create("ops", mgmt.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}

	// Revoke: a minted key stops resolving; revoking again is a 404.
	resp, body := doAuth(t, http.MethodPost, ts.URL+"/v1/keys", adminTok, `{"tenant":"temp","role":"reader"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("key create: %d %s", resp.StatusCode, body)
	}
	var created struct {
		Key   mgmt.Key `json:"key"`
		Token string   `json:"token"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if resp, _ := doAuth(t, http.MethodDelete, ts.URL+"/v1/keys/"+created.Key.ID, adminTok, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("revoke: %d", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/jobs", created.Token, ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("revoked key still resolves: %d", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodDelete, ts.URL+"/v1/keys/"+created.Key.ID, adminTok, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double revoke: %d, want 404", resp.StatusCode)
	}

	// Candidate: PUT replaces the whole document, GET reads it back,
	// commit makes it running. Unknown fields are rejected.
	resp, body = doAuth(t, http.MethodPut, ts.URL+"/v1/config/candidate", adminTok, `{"max_queued": 5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("candidate put: %d %s", resp.StatusCode, body)
	}
	resp, body = doAuth(t, http.MethodGet, ts.URL+"/v1/config/candidate", adminTok, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("candidate get: %d", resp.StatusCode)
	}
	var cand mgmt.Config
	if err := json.Unmarshal(body, &cand); err != nil {
		t.Fatal(err)
	}
	if cand.MaxQueued != 5 {
		t.Fatalf("candidate %+v", cand)
	}
	if resp, _ := doAuth(t, http.MethodPut, ts.URL+"/v1/config/candidate", adminTok, `{"nope": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown candidate field accepted: %d", resp.StatusCode)
	}

	// Config set: an unknown path is a 400, not a silent no-op.
	if resp, _ := doAuth(t, http.MethodPost, ts.URL+"/v1/config/set", adminTok, `{"path":"bogus.path","value":"1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus config path: %d, want 400", resp.StatusCode)
	}

	// Audit query parameter validation.
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/audit?since=notanumber", adminTok, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad audit since: %d, want 400", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/audit?limit=2", adminTok, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("audit limit: %d", resp.StatusCode)
	}

	// Job list since accepts RFC3339 too; garbage is a 400.
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/jobs?since="+url.QueryEscape(time.Now().Format(time.RFC3339)), adminTok, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("RFC3339 since: %d", resp.StatusCode)
	}
	if resp, _ := doAuth(t, http.MethodGet, ts.URL+"/v1/jobs?since=garbage", adminTok, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage since: %d, want 400", resp.StatusCode)
	}
}
