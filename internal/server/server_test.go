package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// testServer boots a manager + server over an httptest listener.
func testServer(t *testing.T, mopt jobs.Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	if mopt.Store == nil {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mopt.Store = st
	}
	if mopt.Telemetry == nil {
		hub, err := telemetry.New(telemetry.Options{Store: mopt.Store})
		if err != nil {
			t.Fatal(err)
		}
		mopt.Telemetry = hub
	}
	mgr, err := jobs.NewManager(mopt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{
		Manager: mgr, Metrics: metrics.NewRegistry(),
		SampleInterval: 20 * time.Millisecond, Telemetry: mopt.Telemetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, mgr
}

func specBody(seed uint64) string {
	return fmt.Sprintf(`{"kind": "reliability", "router": {"n": 4, "m": 2}, "mc": {"seed": %d, "reps": 10}}`, seed)
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func instantRunner(calls *atomic.Int64) jobs.Runner {
	return func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		if calls != nil {
			calls.Add(1)
		}
		return json.RawMessage(`{"answer": 42}`), nil
	}
}

func TestSubmitStatusResult(t *testing.T) {
	var calls atomic.Int64
	ts, mgr := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: instantRunner(&calls)}})

	resp, body := post(t, ts.URL+"/v1/jobs", specBody(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Kind != config.KindReliability {
		t.Fatalf("bad snapshot %+v", snap)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := mgr.Wait(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}

	resp, body = get(t, ts.URL+"/v1/jobs/"+snap.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &snap)
	if snap.State != jobs.StateDone {
		t.Fatalf("state %s", snap.State)
	}

	resp, body = get(t, ts.URL+"/v1/jobs/"+snap.ID+"/result")
	if resp.StatusCode != http.StatusOK || string(body) != `{"answer": 42}` {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}

	resp, body = get(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(snap.ID)) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
}

// TestCacheHitReturns200: the second identical submit is served from the
// store — HTTP 200 with cached set, versus 202 for fresh work.
func TestCacheHitReturns200(t *testing.T) {
	var calls atomic.Int64
	ts, mgr := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: instantRunner(&calls)}})
	_, body := post(t, ts.URL+"/v1/jobs", specBody(2))
	var first jobs.Snapshot
	json.Unmarshal(body, &first)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	mgr.Wait(ctx, first.ID)

	resp, body := post(t, ts.URL+"/v1/jobs", specBody(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit: %d %s", resp.StatusCode, body)
	}
	var second jobs.Snapshot
	json.Unmarshal(body, &second)
	if !second.Cached || second.ID != first.ID {
		t.Fatalf("cache hit snapshot %+v", second)
	}
	if calls.Load() != 1 {
		t.Fatalf("solver ran %d times", calls.Load())
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	ts, _ := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: instantRunner(nil)}})
	for _, body := range []string{
		`not json`,
		`{"kind": "nonsense"}`,
		`{"kind": "reliability"}`, // missing router/mc
		`{"kind": "reliability", "router": {"n": 4, "m": 2}, "mc": {"reps": 10}, "bogus": 1}`,
	} {
		resp, b := post(t, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: status %d %s", body, resp.StatusCode, b)
		}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &e) != nil || e.Error == "" {
			t.Errorf("spec %q: no error body: %s", body, b)
		}
	}
}

// TestQueueFullReturns429 is the admission-control contract: a full
// queue answers 429 with Retry-After instead of growing without bound.
func TestQueueFullReturns429(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	}
	defer close(release)
	ts, _ := testServer(t, jobs.Options{
		Workers: 1, MaxQueued: 2,
		Runners: map[string]jobs.Runner{config.KindReliability: blocking},
	})
	for seed := uint64(1); seed <= 2; seed++ {
		resp, b := post(t, ts.URL+"/v1/jobs", specBody(seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", seed, resp.StatusCode, b)
		}
	}
	resp, b := post(t, ts.URL+"/v1/jobs", specBody(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestCancelEndpoint(t *testing.T) {
	started := make(chan struct{})
	blocking := func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts, mgr := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: blocking}})
	_, body := post(t, ts.URL+"/v1/jobs", specBody(4))
	var snap jobs.Snapshot
	json.Unmarshal(body, &snap)
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := mgr.Wait(ctx, snap.ID)
	if err != nil || final.State != jobs.StateCanceled {
		t.Fatalf("after cancel: %+v, %v", final, err)
	}
}

func TestUnknownJob404s(t *testing.T) {
	ts, _ := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: instantRunner(nil)}})
	id := strings.Repeat("ab", 32)
	for _, path := range []string{"/v1/jobs/" + id, "/v1/jobs/" + id + "/result", "/v1/jobs/" + id + "/events"} {
		resp, _ := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestResultOfRunningJobConflicts: polling a result before the job is
// done reports 409, not 404.
func TestResultOfRunningJobConflicts(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocking := func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	}
	ts, _ := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: blocking}})
	_, body := post(t, ts.URL+"/v1/jobs", specBody(5))
	var snap jobs.Snapshot
	json.Unmarshal(body, &snap)
	resp, _ := get(t, ts.URL+"/v1/jobs/"+snap.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: %d, want 409", resp.StatusCode)
	}
}

// TestEventStream: the NDJSON stream carries lifecycle events, runner
// progress notes, and metric samples, and closes when the job rests.
func TestEventStream(t *testing.T) {
	attached := make(chan struct{}) // closed once the stream is connected
	runner := func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		rc.Metrics.Counter("test_progress_total", "test").Add(7)
		<-attached
		rc.Progress("halfway there")
		time.Sleep(60 * time.Millisecond) // let a sample tick fire
		return json.RawMessage(`{}`), nil
	}
	ts, _ := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: runner}})
	_, body := post(t, ts.URL+"/v1/jobs", specBody(6))
	var snap jobs.Snapshot
	json.Unmarshal(body, &snap)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var sawDone, sawSample, sawNote bool
	sc := bufio.NewScanner(resp.Body)
	// The first line (the primed current state) proves the subscription
	// is live; only then may the runner publish its note.
	if !sc.Scan() {
		t.Fatalf("stream ended before first line: %v", sc.Err())
	}
	close(attached)
	for sc.Scan() {
		var line struct {
			Type  string      `json:"type"`
			Event *jobs.Event `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "event":
			if line.Event.State == jobs.StateDone {
				sawDone = true
			}
			if line.Event.Note == "halfway there" {
				sawNote = true
			}
		case "sample":
			sawSample = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone || !sawSample || !sawNote {
		t.Fatalf("stream missing content: done=%v sample=%v note=%v", sawDone, sawSample, sawNote)
	}
}

// TestEventStreamEndsAfterDroppedTerminalEvent: event delivery is
// best-effort — a flood past the subscriber buffer drops events, the
// terminal transition included. The stream must still end once the job
// is done (the handler falls back to the job snapshot on sample ticks)
// rather than emitting samples forever.
func TestEventStreamEndsAfterDroppedTerminalEvent(t *testing.T) {
	flood := make(chan struct{}) // closed once the stream is connected
	runner := func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		<-flood
		// Far more notes than the subscriber buffer holds, published
		// faster than the handler can drain them: the done transition
		// behind them is dropped.
		note := strings.Repeat("x", 1024)
		for i := 0; i < 256; i++ {
			rc.Progress(note)
		}
		return json.RawMessage(`{"ok": true}`), nil
	}
	ts, mgr := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: runner}})
	_, body := post(t, ts.URL+"/v1/jobs", specBody(77))
	var snap jobs.Snapshot
	json.Unmarshal(body, &snap)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+snap.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("stream ended before first line: %v", sc.Err())
	}
	close(flood)

	sawTerminal := false
	for sc.Scan() {
		var line struct {
			Type  string      `json:"type"`
			Event *jobs.Event `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Type == "event" && line.Event != nil && line.Event.State.Terminal() {
			sawTerminal = true
		}
	}
	// A hung stream surfaces here as the context deadline killing the
	// read mid-scan.
	if err := sc.Err(); err != nil {
		t.Fatalf("stream did not end cleanly: %v", err)
	}
	if !sawTerminal {
		t.Fatal("stream ended without a terminal event")
	}
	if s, _ := mgr.Get(snap.ID); s.State != jobs.StateDone {
		t.Fatalf("job state %s, want done", s.State)
	}
}

func TestHealthzAndMetricsMounted(t *testing.T) {
	ts, mgr := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: instantRunner(nil)}})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
		Queued   int  `json:"queued"`
		Running  int  `json:"running"`
	}
	if err := json.Unmarshal(body, &h); err != nil || !h.OK || h.Draining {
		t.Fatalf("healthz body %s (%v)", body, err)
	}
	resp, _ = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/metrics.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	json.Unmarshal(body, &h)
	if h.OK || !h.Draining {
		t.Fatalf("draining healthz body %s", body)
	}
	resp, _ = post(t, ts.URL+"/v1/jobs", specBody(9))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}
