// Package server is drad's HTTP face: a stdlib net/http API over the
// jobs.Manager. It exposes job submission with admission-control
// semantics mapped onto status codes (429 + Retry-After when the queue
// is full, 503 while draining), status/result/cancel endpoints, and a
// chunked NDJSON progress stream per job fed from the job's lifecycle
// events, its private metrics registry, and its trace recorder. The
// service-wide introspection endpoints (/metrics, /metrics.json,
// /timeline.json, /debug/pprof) mount alongside the API on the same
// listener.
//
// Routes:
//
//	POST   /v1/jobs             submit a spec (202 queued, 200 cache hit)
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        job snapshot
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/result stored result document
//	GET    /v1/jobs/{id}/events NDJSON progress stream
//	POST   /v1/telemetry        ingest windowed samples (NDJSON or array)
//	GET    /v1/telemetry        fleet aggregate summary
//	GET    /v1/telemetry/{id}   per-job series range query (?since=&limit=)
//	GET    /v1/telemetry/tail   fleet-wide NDJSON live tail
//	POST   /v1/fleet/register   worker registration   (coordinator mode)
//	POST   /v1/fleet/claim      worker claims work    (coordinator mode)
//	POST   /v1/fleet/renew      lease heartbeat       (coordinator mode)
//	POST   /v1/fleet/complete   deliver unit result   (coordinator mode)
//	GET    /v1/fleet            fleet status          (coordinator mode)
//	GET    /healthz             readiness (503 while draining or when
//	                            checkpoint/result storage stops taking writes)
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/mgmt"
	"repro/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Manager is the job scheduler the API fronts (required).
	Manager *jobs.Manager
	// Metrics is the service-wide registry served at /metrics; nil
	// serves an empty registry.
	Metrics *metrics.Registry
	// Timeline backs /timeline.json (may be nil).
	Timeline metrics.TimelineFunc
	// SampleInterval is the cadence of metric/trace samples on the
	// events stream; 0 selects 250ms.
	SampleInterval time.Duration
	// MaxSpecBytes bounds a submitted spec body; 0 selects 1 MiB.
	MaxSpecBytes int64
	// Telemetry backs the /v1/telemetry endpoints; nil serves 404s
	// there (the routes stay unmounted).
	Telemetry *telemetry.Hub
	// TailBuffer overrides the per-subscriber sample buffer of the
	// fleet tail (0 selects the hub default). Small values force the
	// lossy-overflow path; tests use this.
	TailBuffer int
	// Fleet, when non-nil, mounts the /v1/fleet worker protocol and the
	// coordinator's status on this server. Nil (standalone mode) leaves
	// those routes unmounted.
	Fleet *fleet.Coordinator
	// StoreProbe, when non-nil, is consulted by /healthz alongside the
	// manager's state-dir probe; a failure flips readiness to 503.
	// Typically store.(*Store).WriteProbe.
	StoreProbe func() error
	// Mgmt, when non-nil, attaches the management plane: API-key
	// authentication on the job endpoints, per-tenant quotas surfaced as
	// 429 tenant_quota refusals, audit recording, and the /v1/keys,
	// /v1/audit, and /v1/config routes. Nil keeps the pre-tenancy
	// behavior: every caller is the anonymous default-tenant admin.
	Mgmt *mgmt.Manager
}

const (
	defaultSampleInterval = 250 * time.Millisecond
	defaultMaxSpecBytes   = 1 << 20
	retryAfterSeconds     = "1"
)

// Server is the drad HTTP handler.
type Server struct {
	mgr *jobs.Manager
	opt Options
	mux *http.ServeMux
}

// New builds the handler.
func New(opt Options) (*Server, error) {
	if opt.Manager == nil {
		return nil, fmt.Errorf("server: Options.Manager is required")
	}
	if opt.SampleInterval <= 0 {
		opt.SampleInterval = defaultSampleInterval
	}
	if opt.MaxSpecBytes <= 0 {
		opt.MaxSpecBytes = defaultMaxSpecBytes
	}
	reg := opt.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{mgr: opt.Manager, opt: opt, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	if opt.Telemetry != nil {
		s.mux.HandleFunc("POST /v1/telemetry", s.telemetryIngest)
		s.mux.HandleFunc("GET /v1/telemetry", s.telemetryFleet)
		s.mux.HandleFunc("GET /v1/telemetry/tail", s.telemetryTail)
		s.mux.HandleFunc("GET /v1/telemetry/{id}", s.telemetryQuery)
	}
	if opt.Fleet != nil {
		s.mux.HandleFunc("POST /v1/fleet/register", s.fleetRegister)
		s.mux.HandleFunc("POST /v1/fleet/claim", s.fleetClaim)
		s.mux.HandleFunc("POST /v1/fleet/renew", s.fleetRenew)
		s.mux.HandleFunc("POST /v1/fleet/complete", s.fleetComplete)
		s.mux.HandleFunc("GET /v1/fleet", s.fleetStatus)
	}
	if opt.Mgmt != nil {
		s.mux.HandleFunc("POST /v1/keys", s.keyCreate)
		s.mux.HandleFunc("GET /v1/keys", s.keyList)
		s.mux.HandleFunc("DELETE /v1/keys/{id}", s.keyRevoke)
		s.mux.HandleFunc("GET /v1/audit", s.auditQuery)
		s.mux.HandleFunc("GET /v1/config", s.configRunning)
		s.mux.HandleFunc("GET /v1/config/candidate", s.configCandidate)
		s.mux.HandleFunc("PUT /v1/config/candidate", s.configPutCandidate)
		s.mux.HandleFunc("POST /v1/config/set", s.configSet)
		s.mux.HandleFunc("GET /v1/config/diff", s.configDiff)
		s.mux.HandleFunc("POST /v1/config/commit", s.configCommit)
		s.mux.HandleFunc("POST /v1/config/rollback", s.configRollback)
	}
	s.mux.HandleFunc("GET /healthz", s.healthz)
	// Introspection shares the listener: the metrics handler owns its
	// own sub-routes, including /debug/pprof.
	mh := metrics.Handler(reg, opt.Timeline)
	for _, p := range []string{"/metrics", "/metrics.json", "/timeline.json", "/debug/"} {
		s.mux.Handle(p, mh)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// apiError is the uniform error body. Cause, when set, machine-labels
// the refusal class — "busy" (global admission), "tenant_quota"
// (per-tenant quota) — so clients can distinguish backoff strategies
// without parsing the message.
type apiError struct {
	Error string `json:"error"`
	Cause string `json:"cause,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func writeErrorCause(w http.ResponseWriter, status int, cause, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Cause: cause})
}

// submit parses, validates, authorizes, and admits a job spec on
// behalf of the caller's tenant.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbSubmit)
	if !ok {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opt.MaxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.opt.MaxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", s.opt.MaxSpecBytes)
		return
	}
	spec, err := config.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, err := s.mgr.SubmitAs(id.Tenant, spec)
	var qerr *mgmt.QuotaError
	switch {
	case errors.As(err, &qerr):
		// Per-tenant quota refusal: the caller is over its own share,
		// not the service over capacity. The distinct cause lets a
		// client tell the two apart; Retry-After carries the quota
		// keeper's backoff hint.
		secs := int(qerr.RetryAfter.Seconds() + 0.999)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.audit(id, mgmt.VerbSubmit, "", "tenant_quota", qerr.Reason)
		writeErrorCause(w, http.StatusTooManyRequests, "tenant_quota", "%v", err)
		return
	case errors.Is(err, jobs.ErrBusy):
		// Global admission control: bounded memory beats a dead server.
		// The client backs off and retries.
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.audit(id, mgmt.VerbSubmit, "", "busy", "")
		writeErrorCause(w, http.StatusTooManyRequests, "busy", "%v", err)
		return
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, jobs.ErrNoRunner):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	outcome := "ok"
	if snap.Cached {
		// The content-addressed store already holds this result; no
		// computation was scheduled.
		status = http.StatusOK
		outcome = "cache"
	}
	s.audit(id, mgmt.VerbSubmit, snap.ID, outcome, snap.Kind)
	writeJSON(w, status, snap)
}

// list serves the job index with optional paging and filtering:
// ?limit=N caps the (newest-first) result, ?since=<RFC3339|unix-ms>
// keeps jobs submitted after the mark, ?tenant= filters by tenant.
// Non-admin callers only ever see their own tenant's jobs.
func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbRead)
	if !ok {
		return
	}
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit wants a non-negative integer")
			return
		}
		limit = n
	}
	var since time.Time
	if v := q.Get("since"); v != "" {
		t, err := parseSince(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		since = t
	}
	tenant, tenantSet := q.Get("tenant"), q.Has("tenant")
	if id.Role != mgmt.RoleAdmin {
		// A non-admin key is scoped to its own tenant regardless of what
		// it asked for.
		tenant, tenantSet = id.Tenant, true
	}
	all := s.mgr.List()
	out := make([]jobs.Snapshot, 0, len(all))
	for _, snap := range all {
		if tenantSet && snap.Tenant != tenant {
			continue
		}
		if !since.IsZero() && !snap.SubmittedAt.After(since) {
			continue
		}
		out = append(out, snap)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// jobForCaller resolves a by-ID job reference under tenant scoping:
// non-admin callers only ever reach jobs their own tenant submitted.
// A job owned elsewhere answers 404 — not 403 — because job IDs are
// content-addressed (deterministic from the spec) and therefore
// guessable without list access; a 403 would leak the cross-tenant
// existence that list() deliberately hides.
func (s *Server) jobForCaller(w http.ResponseWriter, id mgmt.Identity, jobID string) (jobs.Snapshot, bool) {
	snap, err := s.mgr.Get(jobID)
	if err != nil || !callerOwns(id, snap.Tenant) {
		writeError(w, http.StatusNotFound, "%v", jobs.ErrNotFound)
		return jobs.Snapshot{}, false
	}
	return snap, true
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbRead)
	if !ok {
		return
	}
	snap, ok := s.jobForCaller(w, id, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbCancel)
	if !ok {
		return
	}
	jobID := r.PathValue("id")
	if _, ok := s.jobForCaller(w, id, jobID); !ok {
		return
	}
	err := s.mgr.Cancel(jobID)
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.audit(id, mgmt.VerbCancel, jobID, "ok", "")
	snap, _ := s.mgr.Get(jobID)
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbRead)
	if !ok {
		return
	}
	jobID := r.PathValue("id")
	snap, err := s.mgr.Get(jobID)
	known := err == nil
	if known && !callerOwns(id, snap.Tenant) {
		writeError(w, http.StatusNotFound, "%v", jobs.ErrNotFound)
		return
	}
	if !known && id.Role != mgmt.RoleAdmin {
		// The job record is gone (pruned, or from before a restart), so
		// tenant attribution is lost; results without a record stay
		// admin-only rather than leaking across tenants by guessed ID.
		writeError(w, http.StatusNotFound, "%v", jobs.ErrNotFound)
		return
	}
	res, err := s.mgr.Result(jobID)
	if err != nil {
		// Distinguish "job exists but is not done" from "never heard of
		// it" so clients can poll sensibly.
		if known && snap.State != jobs.StateDone {
			writeError(w, http.StatusConflict, "job %s is %s, result not available", jobID, snap.State)
			return
		}
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res)
}

// healthz reports readiness: 200 while serving, 503 once draining so
// load balancers and orchestration pull the instance before shutdown
// completes. The body carries the drain flag, queue depth (queued +
// running), and the running-job count.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	draining := s.mgr.Draining()

	// Storage readiness: a state dir or result store that stopped
	// accepting writes means checkpoints and results are being lost —
	// report not-ready before a job pays for it.
	storageErr := s.mgr.WriteProbe()
	if storageErr == nil && s.opt.StoreProbe != nil {
		storageErr = s.opt.StoreProbe()
	}

	body := map[string]any{
		"ok":         !draining && storageErr == nil,
		"draining":   draining,
		"storage_ok": storageErr == nil,
		"queued":     s.mgr.QueueDepth(),
		"running":    s.mgr.Running(),
	}
	if storageErr != nil {
		body["storage_error"] = storageErr.Error()
	}
	if s.opt.Fleet != nil {
		// A coordinator with zero live workers still accepts submissions
		// (202s queue until a worker appears) but reports itself degraded.
		body["fleet_workers"] = s.opt.Fleet.WorkersLive()
		body["fleet_leases"] = s.opt.Fleet.LeasesActive()
		body["fleet_degraded"] = s.opt.Fleet.WorkersLive() == 0
	}
	code := http.StatusOK
	if draining || storageErr != nil {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// streamLine is one NDJSON line of a job's progress stream.
type streamLine struct {
	Type string `json:"type"` // "event" | "sample"
	// event fields
	Event *jobs.Event `json:"event,omitempty"`
	// sample fields
	JobID       string          `json:"job,omitempty"`
	UnixMs      int64           `json:"unix_ms,omitempty"`
	Metrics     json.RawMessage `json:"metrics,omitempty"`
	TraceEvents int             `json:"trace_events,omitempty"`
}

// events streams a job's progress as chunked NDJSON: every lifecycle
// transition and runner note as an "event" line, plus periodic "sample"
// lines carrying the job's private metrics snapshot and trace depth.
// The stream ends when the job comes to rest or the client goes away.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	caller, ok := s.authorize(w, r, mgmt.VerbRead)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if _, ok := s.jobForCaller(w, caller, id); !ok {
		return
	}
	ch, unsub, err := s.mgr.Subscribe(id)
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer unsub()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line streamLine) bool {
		if err := enc.Encode(line); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	sample := func() bool {
		reg := s.mgr.Registry(id)
		rec := s.mgr.Trace(id)
		if reg == nil {
			return true
		}
		snap, err := reg.SnapshotJSON()
		if err != nil {
			return true
		}
		line := streamLine{Type: "sample", JobID: id, UnixMs: time.Now().UnixMilli(), Metrics: snap}
		if rec != nil {
			line.TraceEvents = rec.Len()
		}
		return emit(line)
	}

	ticker := time.NewTicker(s.opt.SampleInterval)
	defer ticker.Stop()
	for {
		select {
		case ev := <-ch:
			e := ev
			if !emit(streamLine{Type: "event", Event: &e}) {
				return
			}
			if ev.State.Terminal() || ev.State == jobs.StateInterrupted {
				// Final metrics snapshot, then end the stream.
				sample()
				return
			}
		case <-ticker.C:
			if !sample() {
				return
			}
			// Event delivery is best-effort: a slow subscriber can lose
			// the terminal transition. The snapshot is ground truth, so
			// every tick also checks it and closes the stream with a
			// synthesized final event rather than sampling forever.
			if snap, err := s.mgr.Get(id); err == nil &&
				(snap.State.Terminal() || snap.State == jobs.StateInterrupted) {
				emit(streamLine{Type: "event", Event: &jobs.Event{
					JobID: id, Time: time.Now().UnixMilli(),
					State: snap.State, Note: snap.Error,
				}})
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
