package server

// Fleet protocol endpoints: the worker-facing API the coordinator
// serves alongside the public job API.
//
//	POST /v1/fleet/register   worker announces itself, learns timings
//	POST /v1/fleet/claim      worker asks for work (204 = none)
//	POST /v1/fleet/renew      heartbeat: extend lease, ship checkpoint
//	POST /v1/fleet/complete   deliver a unit's result or error
//	GET  /v1/fleet            fleet status (workers, leases, jobs)
//
// 410 Gone tells a worker its lease no longer exists — expired and
// requeued, or the job was canceled — so it abandons the run. The
// routes mount only when Options.Fleet is set; a standalone drad serves
// 404s here, bit-identical to the pre-fleet server.

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/fleet"
)

// Complete bodies carry raw per-replication outcomes (the currency of
// bit-identical shard merging), which for cycle-heavy rare-event jobs
// run to tens of megabytes; renew bodies carry engine checkpoints.
const maxFleetBody = 64 << 20

// readFleetJSON decodes a bounded JSON body, writing the 4xx itself on
// failure.
func readFleetJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFleetBody)).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

func (s *Server) fleetRegister(w http.ResponseWriter, r *http.Request) {
	var req fleet.RegisterRequest
	if !readFleetJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "worker id required")
		return
	}
	writeJSON(w, http.StatusOK, s.opt.Fleet.Register(req.Worker))
}

func (s *Server) fleetClaim(w http.ResponseWriter, r *http.Request) {
	var req fleet.ClaimRequest
	if !readFleetJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "worker id required")
		return
	}
	a, err := s.opt.Fleet.Claim(req.Worker)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if a == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, a)
}

func (s *Server) fleetRenew(w http.ResponseWriter, r *http.Request) {
	var req fleet.RenewRequest
	if !readFleetJSON(w, r, &req) {
		return
	}
	if err := s.opt.Fleet.Renew(req); err != nil {
		fleetError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) fleetComplete(w http.ResponseWriter, r *http.Request) {
	var req fleet.CompleteRequest
	if !readFleetJSON(w, r, &req) {
		return
	}
	if err := s.opt.Fleet.Complete(req); err != nil {
		fleetError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) fleetStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.opt.Fleet.Status())
}

// fleetError maps coordinator errors onto the protocol: an expired or
// canceled lease is 410 Gone, anything else is a 500.
func fleetError(w http.ResponseWriter, err error) {
	if errors.Is(err, fleet.ErrLeaseExpired) {
		writeError(w, http.StatusGone, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}
