package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/mgmt"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// TestTelemetryIngestQueryFleet: the POST→query→fleet round trip over
// HTTP, including pagination, the since cursor, and error mapping.
func TestTelemetryIngestQueryFleet(t *testing.T) {
	ts, _ := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: instantRunner(nil)}})

	// Array form.
	resp, body := post(t, ts.URL+"/v1/telemetry",
		`[{"job":"aaaa1111","window":1,"availability":0.999,"trials":100},
		  {"job":"aaaa1111","window":2,"availability":0.998,"trials":200},
		  {"job":"bbbb2222","window":5,"availability":0.99,"violations_total":3,"trials":50}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	var ack struct{ Ingested, Rejected int }
	json.Unmarshal(body, &ack)
	if ack.Ingested != 3 || ack.Rejected != 0 {
		t.Fatalf("ack %+v", ack)
	}

	// NDJSON form; the stale window (2) and the empty job are rejected,
	// the fresh window lands.
	resp, body = post(t, ts.URL+"/v1/telemetry",
		"{\"job\":\"aaaa1111\",\"window\":2}\n{\"job\":\"\",\"window\":9}\n{\"job\":\"aaaa1111\",\"window\":3,\"availability\":0.997,\"trials\":300}\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson ingest: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &ack)
	if ack.Ingested != 1 || ack.Rejected != 2 {
		t.Fatalf("ndjson ack %+v", ack)
	}

	// Per-job query with a since cursor.
	resp, body = get(t, ts.URL+"/v1/telemetry/aaaa1111?since=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr telemetry.QueryResult
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Samples) != 2 || qr.Samples[0].Window != 2 || qr.Samples[1].Window != 3 {
		t.Fatalf("since=1 page: %+v", qr.Samples)
	}
	if qr.LastWindow != 3 {
		t.Fatalf("last window %d", qr.LastWindow)
	}

	// Pagination: limit=1 returns the first matching window.
	_, body = get(t, ts.URL+"/v1/telemetry/aaaa1111?limit=1")
	json.Unmarshal(body, &qr)
	if len(qr.Samples) != 1 || qr.Samples[0].Window != 1 {
		t.Fatalf("limit=1 page: %+v", qr.Samples)
	}

	// Fleet aggregate sees both jobs.
	_, body = get(t, ts.URL+"/v1/telemetry")
	var fs telemetry.FleetSummary
	if err := json.Unmarshal(body, &fs); err != nil {
		t.Fatal(err)
	}
	if len(fs.Jobs) != 2 || fs.Ingested != 4 {
		t.Fatalf("fleet %+v", fs)
	}

	// Error mapping.
	resp, _ = get(t, ts.URL+"/v1/telemetry/nosuchjob")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown series: %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/telemetry/aaaa1111?since=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: %d, want 400", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/telemetry/aaaa1111?limit=-2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: %d, want 400", resp.StatusCode)
	}
	resp, body = post(t, ts.URL+"/v1/telemetry", `[{"job":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated array: %d %s", resp.StatusCode, body)
	}
}

// TestTelemetryTailConcurrentCompletion: the fleet tail multiplexes
// samples from several jobs finishing concurrently and closes each job
// out with a synthesized "done" line — even though terminal delivery
// through the subscription is best-effort. This extends the per-job
// dropped-terminal-event regression to the fleet-wide stream; run
// under -race it also exercises ingest/subscribe/complete interleaving.
func TestTelemetryTailConcurrentCompletion(t *testing.T) {
	const jobsN = 3
	start := make(chan struct{})
	runner := func(ctx context.Context, rc jobs.RunContext, spec config.Spec) (json.RawMessage, error) {
		<-start
		for wnd := uint64(1); wnd <= 8; wnd++ {
			rc.Telemetry(telemetry.Sample{Window: wnd, Availability: 0.999, Trials: wnd * 10})
		}
		return json.RawMessage(`{"ok": true}`), nil
	}
	ts, _ := testServer(t, jobs.Options{Runners: map[string]jobs.Runner{config.KindReliability: runner}})

	ids := make(map[string]bool)
	for i := 0; i < jobsN; i++ {
		_, body := post(t, ts.URL+"/v1/jobs", specBody(uint64(100+i)))
		var snap jobs.Snapshot
		json.Unmarshal(body, &snap)
		ids[snap.ID] = true
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/telemetry/tail", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(start)

	samples := make(map[string]int)
	done := make(map[string]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for len(done) < jobsN && sc.Scan() {
		var line tailLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "sample":
			samples[line.Sample.Job]++
		case "done":
			if !ids[line.Job] {
				t.Fatalf("done for unknown job %q", line.Job)
			}
			if done[line.Job] {
				t.Fatalf("duplicate done for %q", line.Job)
			}
			done[line.Job] = true
		}
	}
	if len(done) != jobsN {
		t.Fatalf("tail closed out %d/%d jobs (scan err %v)", len(done), jobsN, sc.Err())
	}
	for id := range ids {
		if samples[id] == 0 {
			t.Errorf("no samples tailed for %s", id)
		}
	}
}

// TestTelemetryTailSubscriberOverflow: a tail whose subscriber buffer
// overflows keeps the producers unblocked, loses samples, and reports
// the loss with a "dropped" line instead of stalling or dying.
func TestTelemetryTailSubscriberOverflow(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := telemetry.New(telemetry.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := jobs.NewManager(jobs.Options{
		Store:     st,
		Telemetry: hub,
		Runners:   map[string]jobs.Runner{config.KindReliability: instantRunner(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{
		Manager: mgr, SampleInterval: 10 * time.Millisecond,
		Telemetry: hub, TailBuffer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/telemetry/tail", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Flood from several producers: with a 1-slot subscriber buffer the
	// handler cannot keep up and must shed.
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			job := fmt.Sprintf("f100d%03d", p)
			for wnd := uint64(1); wnd <= 500; wnd++ {
				hub.Ingest(telemetry.Sample{Job: job, Window: wnd})
			}
		}(p)
	}
	wg.Wait()

	sawDrop := false
	sawSample := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line tailLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "sample":
			sawSample = true
		case "dropped":
			if line.Dropped == 0 {
				t.Fatal("dropped line with zero count")
			}
			sawDrop = true
		}
		if sawDrop && sawSample {
			break
		}
	}
	if !sawSample || !sawDrop {
		t.Fatalf("sawSample=%v sawDrop=%v (scan err %v)", sawSample, sawDrop, sc.Err())
	}
}

// TestServiceMetricNamesLint pins every family the service registry
// accumulates — store, job manager, telemetry hub — to the Prometheus
// naming conventions LintNames enforces.
func TestServiceMetricNamesLint(t *testing.T) {
	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Metrics: reg, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := telemetry.New(telemetry.Options{Store: st, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := jobs.NewManager(jobs.Options{
		Store: st, Metrics: reg, Telemetry: hub, Dir: t.TempDir(),
		Runners: map[string]jobs.Runner{config.KindReliability: instantRunner(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The fleet coordinator registers its families (fleet_workers_live,
	// fleet_leases_active, fleet_*_total) on the same registry.
	fleet.New(fleet.Options{Backend: mgr, Metrics: reg})
	// The management plane registers the mgmt_tenant_*, mgmt_audit_*,
	// mgmt_auth_*, and mgmt_config_* families; exercise the vec paths so
	// labeled children materialize too.
	mg, err := mgmt.New(mgmt.Options{Dir: t.TempDir(), AllowAnonymous: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	if err := mg.Conf().Set("tenants.linted.quota.max_queued", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Commit(mgmt.Identity{Role: mgmt.RoleAdmin}); err != nil {
		t.Fatal(err)
	}
	if err := mg.AdmitSubmit("linted", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := mg.AdmitSubmit("linted", 1, 0); err == nil {
		t.Fatal("expected a quota rejection to materialize the rejection counter")
	}
	mg.Resolve("drak_bogus")
	// Both write probes publish their writability gauges.
	if err := mgr.WriteProbe(); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteProbe(); err != nil {
		t.Fatal(err)
	}
	if problems := reg.LintNames(); len(problems) != 0 {
		t.Fatalf("metric naming violations:\n%s", strings.Join(problems, "\n"))
	}
}
