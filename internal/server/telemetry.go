package server

// The /v1/telemetry endpoints: the HTTP face of the telemetry hub.
// Running jobs push windowed samples through their RunContext; remote
// producers (and dractl bench) can POST them; readers get per-job
// range queries with pagination, a fleet aggregate, and a fleet-wide
// NDJSON live tail that multiplexes every job's sample stream.

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// telemetryIngest accepts samples as NDJSON (one Sample per line) or a
// single JSON array, and pushes them onto the hub. Samples that fail
// hub admission (no job ID, stale window) are counted, not fatal: the
// response reports {ingested, rejected} and ingestion is best-effort
// by design — a producer must never stall on the observer.
func (s *Server) telemetryIngest(w http.ResponseWriter, r *http.Request) {
	body := io.LimitReader(r.Body, s.opt.MaxSpecBytes+1)
	var samples []telemetry.Sample

	br := bufio.NewReader(body)
	first, err := br.Peek(1)
	if err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(first) > 0 && first[0] == '[' {
		if err := json.NewDecoder(br).Decode(&samples); err != nil {
			writeError(w, http.StatusBadRequest, "parsing sample array: %v", err)
			return
		}
	} else {
		dec := json.NewDecoder(br)
		for {
			var smp telemetry.Sample
			if err := dec.Decode(&smp); err == io.EOF {
				break
			} else if err != nil {
				writeError(w, http.StatusBadRequest, "parsing sample stream: %v", err)
				return
			}
			samples = append(samples, smp)
		}
	}

	ingested, rejected := 0, 0
	for _, smp := range samples {
		if err := s.opt.Telemetry.Ingest(smp); err != nil {
			rejected++
		} else {
			ingested++
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"ingested": ingested, "rejected": rejected})
}

// telemetryFleet serves the cross-job aggregate: per-job latest
// samples plus fleet availability, violation rate, and throughput.
func (s *Server) telemetryFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.opt.Telemetry.Fleet())
}

// telemetryQuery serves one job's retained series. ?since=W returns
// only windows strictly after W (resume a tail without re-reading);
// ?limit=N caps the page size, with next_since pointing at the
// continuation.
func (s *Server) telemetryQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var since uint64
	var limit int
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since %q: %v", v, err)
			return
		}
		since = n
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	res, err := s.opt.Telemetry.Query(id, since, limit)
	if errors.Is(err, telemetry.ErrNoSeries) {
		writeError(w, http.StatusNotFound, "no telemetry series for job %s", id)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// tailLine is one NDJSON line of the fleet-wide telemetry tail.
type tailLine struct {
	Type string `json:"type"` // "sample" | "done" | "dropped"
	// sample lines carry the sample verbatim.
	Sample *telemetry.Sample `json:"sample,omitempty"`
	// done lines mark a tailed job coming to rest.
	Job    string     `json:"job,omitempty"`
	State  jobs.State `json:"state,omitempty"`
	UnixMs int64      `json:"unix_ms,omitempty"`
	// dropped lines report samples lost to subscriber-buffer overflow
	// since the previous line (the tail is lossy under pressure, never
	// blocking).
	Dropped uint64 `json:"dropped,omitempty"`
}

// telemetryTail streams every job's samples as one multiplexed NDJSON
// feed. Subscription delivery is best-effort (a slow client drops
// samples, reported via "dropped" lines, rather than stalling
// producers), so — like the per-job events stream — each tick also
// consults the manager's snapshots directly and synthesizes a "done"
// line for any tailed job that reached a terminal state, even if the
// samples that would have revealed it were dropped. The stream runs
// until the client disconnects.
func (s *Server) telemetryTail(w http.ResponseWriter, r *http.Request) {
	sub := s.opt.Telemetry.Subscribe(s.opt.TailBuffer)
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the response header out now: the first body line may be
		// arbitrarily far away on a quiet fleet, and tailing clients
		// block on the header.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(line tailLine) bool {
		if err := enc.Encode(line); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	// Jobs seen on the feed that have not yet been reported done. Seeded
	// from the hub so a tail attached after a burst still closes out
	// jobs whose samples it never saw.
	open := make(map[string]bool)
	for _, job := range s.opt.Telemetry.Jobs() {
		open[job] = true
	}
	reap := func() bool {
		for job := range open {
			snap, err := s.mgr.Get(job)
			if err != nil {
				// Unknown to the manager (e.g. an externally POSTed
				// series): nothing to report done.
				delete(open, job)
				continue
			}
			if snap.State.Terminal() || snap.State == jobs.StateInterrupted {
				delete(open, job)
				if !emit(tailLine{Type: "done", Job: job, State: snap.State, UnixMs: time.Now().UnixMilli()}) {
					return false
				}
			}
		}
		return true
	}
	if !reap() {
		return
	}

	ticker := time.NewTicker(s.opt.SampleInterval)
	defer ticker.Stop()
	for {
		select {
		case smp, ok := <-sub.C:
			if !ok {
				return
			}
			open[smp.Job] = true
			if !emit(tailLine{Type: "sample", Sample: &smp}) {
				return
			}
		case <-ticker.C:
			if n := sub.Dropped(); n > 0 {
				if !emit(tailLine{Type: "dropped", Dropped: n, UnixMs: time.Now().UnixMilli()}) {
					return
				}
			}
			if !reap() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
