package server

// Management-plane HTTP surface: authentication/authorization helpers
// applied to every API handler, and the key/audit/config endpoints.
// All of it is conditional on Options.Mgmt — a server built without a
// management plane behaves exactly like the pre-tenancy service
// (anonymous admin, no audit, no extra routes), which is what keeps the
// existing e2e walls green unmodified.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/mgmt"
)

// bearerToken extracts the request's API token: "Authorization: Bearer
// <token>" wins, "X-API-Key: <token>" is the fallback.
func bearerToken(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// authorize resolves the caller and gates the verb, writing the 401/403
// itself on refusal. A server without a management plane admits
// everyone as the anonymous default-tenant admin.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request, v mgmt.Verb) (mgmt.Identity, bool) {
	if s.opt.Mgmt == nil {
		return mgmt.Identity{Role: mgmt.RoleAdmin, Anonymous: true}, true
	}
	id, err := s.opt.Mgmt.Resolve(bearerToken(r))
	if err != nil {
		w.Header().Set("WWW-Authenticate", `Bearer realm="drad"`)
		writeError(w, http.StatusUnauthorized, "%v", err)
		return mgmt.Identity{}, false
	}
	if err := s.opt.Mgmt.Authorize(id, v); err != nil {
		writeError(w, http.StatusForbidden, "%v", err)
		return mgmt.Identity{}, false
	}
	return id, true
}

// callerOwns reports whether the caller may act on a job owned by
// tenant: admin keys (and the anonymous admin) reach every job, other
// roles only their own tenant's.
func callerOwns(id mgmt.Identity, tenant string) bool {
	return id.Role == mgmt.RoleAdmin || id.Tenant == tenant
}

// audit records a management-plane action when a plane is attached.
func (s *Server) audit(id mgmt.Identity, verb mgmt.Verb, job, outcome, detail string) {
	if s.opt.Mgmt != nil {
		s.opt.Mgmt.Record(id, verb, job, outcome, detail)
	}
}

// --- key management ---

type createKeyRequest struct {
	Tenant string    `json:"tenant"`
	Role   mgmt.Role `json:"role"`
}

type createKeyResponse struct {
	Key   mgmt.Key `json:"key"`
	Token string   `json:"token"` // shown exactly once
}

func (s *Server) keyCreate(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbKeys)
	if !ok {
		return
	}
	var req createKeyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if req.Role == "" {
		req.Role = mgmt.RoleOperator
	}
	k, token, err := s.opt.Mgmt.Keys().Create(req.Tenant, req.Role)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		s.audit(id, mgmt.VerbKeys, "", "error", err.Error())
		return
	}
	s.audit(id, mgmt.VerbKeys, "", "ok", "created "+k.ID+" for tenant "+k.Tenant)
	writeJSON(w, http.StatusCreated, createKeyResponse{Key: k, Token: token})
}

func (s *Server) keyList(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r, mgmt.VerbKeys); !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.opt.Mgmt.Keys().List())
}

func (s *Server) keyRevoke(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbKeys)
	if !ok {
		return
	}
	keyID := r.PathValue("id")
	removed, err := s.opt.Mgmt.Keys().Revoke(keyID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !removed {
		writeError(w, http.StatusNotFound, "no key %q", keyID)
		return
	}
	s.audit(id, mgmt.VerbKeys, "", "ok", "revoked "+keyID)
	writeJSON(w, http.StatusOK, map[string]string{"revoked": keyID})
}

// --- audit log ---

func (s *Server) auditQuery(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r, mgmt.VerbAudit); !ok {
		return
	}
	q := r.URL.Query()
	opts := mgmt.QueryOpts{Tenant: q.Get("tenant"), Verb: q.Get("verb")}
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "since wants a sequence number: %v", err)
			return
		}
		opts.Since = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit wants a non-negative integer")
			return
		}
		opts.Limit = n
	}
	entries, err := s.opt.Mgmt.AuditQuery(opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if entries == nil {
		entries = []mgmt.Entry{}
	}
	writeJSON(w, http.StatusOK, entries)
}

// --- config datastore ---

func (s *Server) configRunning(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r, mgmt.VerbConfigRead); !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.opt.Mgmt.Conf().Running())
}

func (s *Server) configCandidate(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r, mgmt.VerbConfigRead); !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.opt.Mgmt.Conf().Candidate())
}

func (s *Server) configPutCandidate(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r, mgmt.VerbConfigWrite); !ok {
		return
	}
	var cfg mgmt.Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, "parsing config: %v", err)
		return
	}
	s.opt.Mgmt.Conf().SetCandidate(cfg)
	writeJSON(w, http.StatusOK, s.opt.Mgmt.Conf().Candidate())
}

type configSetRequest struct {
	Path  string `json:"path"`
	Value string `json:"value"`
}

func (s *Server) configSet(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r, mgmt.VerbConfigWrite); !ok {
		return
	}
	var req configSetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if err := s.opt.Mgmt.Conf().Set(req.Path, req.Value); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.opt.Mgmt.Conf().Candidate())
}

func (s *Server) configDiff(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r, mgmt.VerbConfigRead); !ok {
		return
	}
	diff := s.opt.Mgmt.Conf().Diff()
	if diff == nil {
		diff = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"changes": diff})
}

func (s *Server) configCommit(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbConfigWrite)
	if !ok {
		return
	}
	cfg, err := s.opt.Mgmt.Commit(id)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cfg)
}

func (s *Server) configRollback(w http.ResponseWriter, r *http.Request) {
	id, ok := s.authorize(w, r, mgmt.VerbConfigWrite)
	if !ok {
		return
	}
	cfg, err := s.opt.Mgmt.Rollback(id)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cfg)
}

// parseSince accepts RFC3339 or unix milliseconds.
func parseSince(v string) (time.Time, error) {
	if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.UnixMilli(ms), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, errors.New("since wants RFC3339 or unix milliseconds")
	}
	return t, nil
}
