// Package config loads router-and-scenario descriptions from JSON so
// outage replays can be written as data rather than Go. A file describes
// the router (architecture, linecard protocols, capacities, loads) and a
// timeline of fault/repair events; Build turns it into a ready router and
// a Scenario to play against it.
//
// Example:
//
//	{
//	  "arch": "dra",
//	  "protocols": ["ethernet", "ethernet", "sonet", "atm"],
//	  "load": 0.15,
//	  "events": [
//	    {"at": 100, "action": "fail", "lc": 0, "component": "SRU"},
//	    {"at": 200, "action": "fail-bus"},
//	    {"at": 300, "action": "repair-bus"},
//	    {"at": 400, "action": "repair", "lc": 0}
//	  ]
//	}
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/linecard"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/topology"
)

// File is the top-level JSON document.
type File struct {
	// Arch is "dra" (default) or "bdr".
	Arch string `json:"arch"`
	// Protocols names each linecard's L2 protocol; when empty, N and M
	// select the standard uniform layout.
	Protocols []string `json:"protocols"`
	N         int      `json:"n"`
	M         int      `json:"m"`
	// LCCapacity is c_LC in bits per time unit (default 10e9).
	LCCapacity float64 `json:"lc_capacity"`
	// BusCapacity is B_BUS (default: one LC capacity).
	BusCapacity float64 `json:"bus_capacity"`
	// Load is the uniform offered-load fraction; Loads overrides per LC.
	Load  float64   `json:"load"`
	Loads []float64 `json:"loads"`
	Seed  uint64    `json:"seed"`
	// Topology selects the interconnect graph (bus by default).
	Topology *topology.Spec `json:"topology,omitempty"`
	// Events is the scenario timeline.
	Events []Event `json:"events"`
}

// Event is one timeline step.
type Event struct {
	At     float64 `json:"at"`
	Action string  `json:"action"`
	LC     int     `json:"lc"`
	// Component names the unit for fail/repair-component actions.
	Component string `json:"component"`
	// Card/Port select fabric elements.
	Card int `json:"card"`
	Port int `json:"port"`
	// Unit indexes a topology interconnect unit for fail-unit /
	// repair-unit actions (non-bus topologies only).
	Unit int `json:"unit,omitempty"`
}

// Parse decodes and validates a JSON document.
func Parse(data []byte) (File, error) {
	var f File
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("config: %w", err)
	}
	if err := f.validate(); err != nil {
		return f, err
	}
	return f, nil
}

// LoadFile reads and parses a JSON file.
func LoadFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

func (f File) validate() error {
	if f.Arch != "" && !strings.EqualFold(f.Arch, "dra") && !strings.EqualFold(f.Arch, "bdr") {
		return fmt.Errorf("config: unknown arch %q", f.Arch)
	}
	if len(f.Protocols) == 0 && f.N == 0 {
		return fmt.Errorf("config: need protocols or n")
	}
	if len(f.Protocols) == 1 {
		return fmt.Errorf("config: a router needs at least two linecards")
	}
	for _, p := range f.Protocols {
		if _, err := parseProtocol(p); err != nil {
			return err
		}
	}
	if f.Load < 0 || f.Load > 1 {
		return fmt.Errorf("config: load %g outside [0, 1]", f.Load)
	}
	n := len(f.Protocols)
	if n == 0 {
		n = f.N
	}
	if len(f.Loads) != 0 && len(f.Loads) != n {
		return fmt.Errorf("config: %d loads for %d linecards", len(f.Loads), n)
	}
	units := 0
	if f.Topology != nil {
		if err := f.Topology.Validate(n); err != nil {
			return fmt.Errorf("config: topology.%w", err)
		}
		if g, err := topology.New(*f.Topology, n); err == nil {
			units = g.Units()
		}
	}
	for i, e := range f.Events {
		if err := validateEvent(e, n, units); err != nil {
			return fmt.Errorf("config: event %d: %w", i, err)
		}
	}
	return nil
}

func validateEvent(e Event, n, units int) error {
	needsLC := false
	needsComponent := false
	switch strings.ToLower(e.Action) {
	case "fail", "repair-component":
		needsLC, needsComponent = true, true
	case "repair":
		needsLC = true
	case "fail-bus", "repair-bus", "fail-fabric-card", "repair-fabric-card":
	case "fail-fabric-port", "repair-fabric-port":
		needsLC = true
	case "fail-unit", "repair-unit":
		if e.Unit < 0 || e.Unit >= units {
			return fmt.Errorf("topology unit %d outside [0, %d)", e.Unit, units)
		}
	default:
		return fmt.Errorf("unknown action %q", e.Action)
	}
	if e.At < 0 {
		return fmt.Errorf("negative time %g", e.At)
	}
	if needsLC && (e.LC < 0 || e.LC >= n) {
		return fmt.Errorf("lc %d outside [0, %d)", e.LC, n)
	}
	if needsComponent {
		if _, err := parseComponent(e.Component); err != nil {
			return err
		}
	}
	return nil
}

func parseProtocol(s string) (packet.Protocol, error) {
	switch strings.ToLower(s) {
	case "ethernet":
		return packet.ProtoEthernet, nil
	case "sonet":
		return packet.ProtoSONET, nil
	case "atm":
		return packet.ProtoATM, nil
	case "framerelay", "frame-relay":
		return packet.ProtoFrameRelay, nil
	default:
		return 0, fmt.Errorf("config: unknown protocol %q", s)
	}
}

func parseComponent(s string) (linecard.Component, error) {
	switch strings.ToUpper(s) {
	case "PIU":
		return linecard.PIU, nil
	case "PDLU":
		return linecard.PDLU, nil
	case "SRU":
		return linecard.SRU, nil
	case "LFE":
		return linecard.LFE, nil
	case "BC", "BUSCONTROLLER":
		return linecard.BusController, nil
	default:
		return 0, fmt.Errorf("config: unknown component %q", s)
	}
}

// Build constructs the router and scenario described by the file. Routes
// and offered loads are installed; the scenario is ready to Play.
func (f File) Build() (*router.Router, *router.Scenario, error) {
	if err := f.validate(); err != nil {
		return nil, nil, err
	}
	arch := linecard.DRA
	if strings.EqualFold(f.Arch, "bdr") {
		arch = linecard.BDR
	}
	var cfg router.Config
	if len(f.Protocols) > 0 {
		protos := make([]packet.Protocol, len(f.Protocols))
		for i, s := range f.Protocols {
			p, err := parseProtocol(s)
			if err != nil {
				return nil, nil, err
			}
			protos[i] = p
		}
		cfg = router.Config{Arch: arch, Protocols: protos}
	} else {
		m := f.M
		if m == 0 {
			m = f.N
		}
		cfg = router.UniformConfig(arch, f.N, m)
	}
	if f.LCCapacity > 0 {
		cfg.LCCapacity = f.LCCapacity
	}
	if f.BusCapacity > 0 {
		cfg.Bus.DataCapacity = f.BusCapacity
	}
	if f.Seed != 0 {
		cfg.Seed = f.Seed
	}
	if f.Topology != nil {
		cfg.Topology = *f.Topology
	}
	r, err := router.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	r.InstallUniformRoutes()
	for i := 0; i < r.NumLCs(); i++ {
		load := f.Load
		if len(f.Loads) > 0 {
			load = f.Loads[i]
		}
		if load > 0 {
			r.SetOfferedLoad(i, load*r.LC(i).Capacity())
		}
	}
	var sc router.Scenario
	for _, e := range f.Events {
		switch strings.ToLower(e.Action) {
		case "fail":
			c, _ := parseComponent(e.Component)
			sc.Fail(e.At, e.LC, c)
		case "repair-component":
			c, _ := parseComponent(e.Component)
			lc := e.LC
			sc.At(e.At, fmt.Sprintf("repair LC%d %v", lc, c), func(r *router.Router) {
				r.RepairComponent(lc, c)
			})
		case "repair":
			sc.Repair(e.At, e.LC)
		case "fail-bus":
			sc.FailBus(e.At)
		case "repair-bus":
			sc.RepairBus(e.At)
		case "fail-fabric-card":
			sc.FailFabricCard(e.At, e.Card)
		case "repair-fabric-card":
			sc.RepairFabricCard(e.At, e.Card)
		case "fail-fabric-port":
			sc.FailFabricPort(e.At, e.LC)
		case "repair-fabric-port":
			lc := e.LC
			sc.At(e.At, fmt.Sprintf("repair fabric port %d", lc), func(r *router.Router) {
				r.Fabric().RepairPort(lc)
			})
		case "fail-unit":
			u := e.Unit
			sc.At(e.At, fmt.Sprintf("fail topology unit %d", u), func(r *router.Router) {
				r.FailTopoUnit(u)
			})
		case "repair-unit":
			u := e.Unit
			sc.At(e.At, fmt.Sprintf("repair topology unit %d", u), func(r *router.Router) {
				r.RepairTopoUnit(u)
			})
		}
	}
	return r, &sc, nil
}
