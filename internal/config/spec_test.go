package config

import (
	"strings"
	"testing"
)

func TestParseSpecKinds(t *testing.T) {
	cases := []string{
		`{"kind": "figure", "figure": {"fig": 6}}`,
		`{"kind": "figure", "figure": {"fig": 8, "n": 9, "bus": 5e9}}`,
		`{"kind": "sweep", "sweep": {"analysis": "reliability", "n_lo": 3, "n_hi": 5, "m_lo": 2, "m_hi": 2}}`,
		`{"kind": "reliability", "router": {"n": 6, "m": 3}}`,
		`{"kind": "availability", "router": {"arch": "bdr", "n": 3, "m": 2}, "mc": {"mu": 0.25}}`,
		`{"kind": "rareevent", "router": {"n": 9, "m": 4}, "mc": {"delta": 0.3, "reps": 100}}`,
		`{"kind": "chaos", "chaos": {"name": "c", "n": 4, "events": [{"at": 1, "kind": "fail-bus"}]}}`,
		`{"kind": "scenario", "scenario": {"n": 4, "events": [{"at": 1, "action": "fail-bus"}]}}`,
	}
	for _, src := range cases {
		if _, err := ParseSpec([]byte(src)); err != nil {
			t.Errorf("ParseSpec(%s): %v", src, err)
		}
	}
}

// TestSpecValidationNamesField holds the satellite contract: every
// validation failure names the offending field.
func TestSpecValidationNamesField(t *testing.T) {
	cases := []struct {
		src   string
		field string
	}{
		{`{}`, "kind"},
		{`{"kind": "warp"}`, "kind"},
		{`{"kind": "figure"}`, "figure"},
		{`{"kind": "figure", "figure": {"fig": 5}}`, "figure.fig"},
		{`{"kind": "figure", "figure": {"fig": 6, "n": 4}}`, "figure.n"},
		{`{"kind": "sweep", "sweep": {"analysis": "x", "n_lo": 3, "n_hi": 4, "m_lo": 2, "m_hi": 2}}`, "sweep.analysis"},
		{`{"kind": "sweep", "sweep": {"analysis": "mttf", "n_lo": 1, "n_hi": 4, "m_lo": 2, "m_hi": 2}}`, "sweep.n_lo"},
		{`{"kind": "sweep", "sweep": {"analysis": "mttf", "n_lo": 4, "n_hi": 3, "m_lo": 2, "m_hi": 2}}`, "sweep.n_hi"},
		{`{"kind": "reliability"}`, "router"},
		{`{"kind": "reliability", "router": {"arch": "x", "n": 6, "m": 3}}`, "router.arch"},
		{`{"kind": "reliability", "router": {"n": 1, "m": 1}}`, "router.n"},
		{`{"kind": "reliability", "router": {"n": 6, "m": 7}}`, "router.m"},
		{`{"kind": "reliability", "router": {"n": 6, "m": 3}, "mc": {"reps": -1}}`, "mc.reps"},
		{`{"kind": "reliability", "router": {"n": 6, "m": 3}, "mc": {"delta": 0.3}}`, "mc.delta"},
		{`{"kind": "rareevent", "router": {"n": 6, "m": 3}, "mc": {"delta": 0.6}}`, "mc.delta"},
		{`{"kind": "availability", "router": {"n": 6, "m": 3}, "mc": {"cycles_per_rep": 5}}`, "mc.cycles_per_rep"},
		{`{"kind": "availability", "router": {"n": 6, "m": 3}, "mc": {"target_rel_err": 1.5}}`, "mc.target_rel_err"},
		{`{"kind": "chaos"}`, "chaos"},
		{`{"kind": "chaos", "chaos": {"name": "c", "n": 4, "events": [{"at": 1, "kind": "warp"}]}}`, "chaos"},
		{`{"kind": "scenario"}`, "scenario"},
		{`{"kind": "scenario", "scenario": {"n": 4, "events": [{"at": 1, "action": "warp"}]}}`, "scenario"},
	}
	for _, tc := range cases {
		_, err := ParseSpec([]byte(tc.src))
		if err == nil {
			t.Errorf("ParseSpec(%s): want error naming %q, got nil", tc.src, tc.field)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("ParseSpec(%s): error %q does not name field %q", tc.src, err, tc.field)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"kind": "figure", "figure": {"fig": 6}, "bogus": 1}`)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	if _, err := ParseSpec([]byte(`{"kind": "figure", "figure": {"fig": 6, "bogus": 1}}`)); err == nil {
		t.Fatal("unknown nested field accepted")
	}
}

// TestJobIDDeterministic: the ID is a pure function of the computation —
// key order, explicit defaults, priority and worker counts must not
// split it; any result-relevant field must.
func TestJobIDDeterministic(t *testing.T) {
	id := func(src string) string {
		t.Helper()
		s, err := ParseSpec([]byte(src))
		if err != nil {
			t.Fatalf("ParseSpec(%s): %v", src, err)
		}
		jid, err := s.JobID()
		if err != nil {
			t.Fatalf("JobID(%s): %v", src, err)
		}
		return jid
	}
	base := id(`{"kind": "availability", "router": {"n": 6, "m": 3}}`)
	same := []string{
		// Key order.
		`{"router": {"m": 3, "n": 6}, "kind": "availability"}`,
		// Defaults spelled out.
		`{"kind": "availability", "router": {"arch": "dra", "n": 6, "m": 3}, "mc": {"horizon": 40000, "reps": 1000, "seed": 1, "mu": 0.3333333333333333}}`,
		// Arch case.
		`{"kind": "availability", "router": {"arch": "DRA", "n": 6, "m": 3}}`,
		// Result-irrelevant knobs.
		`{"kind": "availability", "router": {"n": 6, "m": 3}, "priority": 9, "mc": {"workers": 16}}`,
	}
	for _, src := range same {
		if got := id(src); got != base {
			t.Errorf("JobID(%s) = %s, want %s (must not split the cache key)", src, got, base)
		}
	}
	diff := []string{
		`{"kind": "availability", "router": {"n": 7, "m": 3}}`,
		`{"kind": "availability", "router": {"n": 6, "m": 3}, "mc": {"seed": 2}}`,
		`{"kind": "availability", "router": {"n": 6, "m": 3}, "mc": {"reps": 2000}}`,
		`{"kind": "reliability", "router": {"n": 6, "m": 3}}`,
	}
	for _, src := range diff {
		if got := id(src); got == base {
			t.Errorf("JobID(%s) = base ID; result-relevant change must change the ID", src)
		}
	}
}

// TestJobIDChaosCanonicalization: chaos documents canonicalize through
// the typed campaign, so formatting differences collapse.
func TestJobIDChaosCanonicalization(t *testing.T) {
	a, err := ParseSpec([]byte(`{"kind": "chaos", "chaos": {"name": "c", "n": 4, "events": [{"at": 1, "kind": "fail-bus"}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(`{"kind": "chaos", "chaos": {
		"events": [{"kind": "fail-bus", "at": 1}],
		"n": 4, "name": "c"
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	ida, _ := a.JobID()
	idb, _ := b.JobID()
	if ida != idb {
		t.Fatalf("chaos key order split the job ID: %s vs %s", ida, idb)
	}
}

// TestMCSpecReliabilityIgnoresMu: kind-irrelevant fields are zeroed in
// normalization so they cannot split the cache key.
func TestMCSpecReliabilityIgnoresMu(t *testing.T) {
	a, _ := ParseSpec([]byte(`{"kind": "reliability", "router": {"n": 6, "m": 3}}`))
	b, _ := ParseSpec([]byte(`{"kind": "reliability", "router": {"n": 6, "m": 3}, "mc": {"mu": 0.5}}`))
	ida, _ := a.JobID()
	idb, _ := b.JobID()
	if ida != idb {
		t.Fatalf("mu split the reliability job ID (reliability never repairs)")
	}
}

// TestObservatorySpec: the observatory kind validates like the
// rare-event kind (biasing and cycles_per_rep allowed) and normalizes
// with the horizon zeroed and the repair rate defaulted.
func TestObservatorySpec(t *testing.T) {
	raw := []byte(`{"kind": "observatory",
		"router": {"n": 9, "m": 4},
		"mc": {"reps": 5000, "delta": 0.3, "cycles_per_rep": 20, "batch": 100}}`)
	s, err := ParseSpec(raw)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	n := s.Normalize()
	if n.MC.Horizon != 0 {
		t.Fatalf("observatory horizon must normalize to 0, got %g", n.MC.Horizon)
	}
	if n.MC.Mu != 1.0/3 {
		t.Fatalf("observatory mu must default to 1/3, got %g", n.MC.Mu)
	}
	if n.MC.Seed != 1 || n.MC.Reps != 5000 {
		t.Fatalf("normalize mangled mc: %+v", n.MC)
	}

	// Spelling out the defaults canonicalizes to the same job.
	explicit := []byte(`{"kind": "observatory",
		"router": {"arch": "dra", "n": 9, "m": 4},
		"mc": {"reps": 5000, "mu": 0.3333333333333333, "seed": 1, "delta": 0.3, "cycles_per_rep": 20, "batch": 100, "horizon": 12345}}`)
	s2, err := ParseSpec(explicit)
	if err != nil {
		t.Fatalf("ParseSpec explicit: %v", err)
	}
	id1, err1 := s.JobID()
	id2, err2 := s2.JobID()
	if err1 != nil || err2 != nil || id1 != id2 {
		t.Fatalf("job IDs differ: %s vs %s (%v, %v)", id1, id2, err1, err2)
	}

	// Workers cannot split the cache key either.
	if _, err := ParseSpec([]byte(`{"kind": "observatory", "router": {"n": 2, "m": 3}}`)); err == nil {
		t.Fatal("M > N must fail validation")
	}
}
