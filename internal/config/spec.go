package config

// Job specs: one JSON document format that names a job kind (figure,
// sweep, Monte-Carlo reliability/availability, rare-event, chaos,
// scenario, observatory) plus the options that kind needs. The same spec drives the
// CLIs (`drasim -spec`, `dramodel -spec`) and the drad job service, and
// its canonical form is the content-address of the job: two specs that
// normalize to the same canonical bytes are the same job and share one
// cached result.
//
// Example:
//
//	{"kind": "rareevent",
//	 "router": {"arch": "dra", "n": 9, "m": 4},
//	 "mc": {"mu": 0.3333, "reps": 10000, "delta": 0.3, "target_rel_err": 0.1}}

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
	"repro/internal/topology"
)

// Job kinds accepted by Spec.Kind.
const (
	KindFigure       = "figure"
	KindSweep        = "sweep"
	KindReliability  = "reliability"
	KindAvailability = "availability"
	KindRareEvent    = "rareevent"
	KindChaos        = "chaos"
	KindScenario     = "scenario"
	// KindObservatory is the long-horizon continuous estimation run: the
	// rare-event regenerative estimator driven as a service job that
	// checkpoints every batch and streams windowed telemetry samples, so
	// its availability estimate is queryable while it runs.
	KindObservatory = "observatory"
)

// Kinds lists every job kind, in display order.
func Kinds() []string {
	return []string{KindFigure, KindSweep, KindReliability, KindAvailability, KindRareEvent, KindChaos, KindScenario, KindObservatory}
}

// Spec is the top-level job document.
type Spec struct {
	// Kind selects the engine; see the Kind* constants.
	Kind string `json:"kind"`
	// Priority is a scheduling hint (higher runs first). It cannot
	// change the result, so it is excluded from the job ID.
	Priority int `json:"priority,omitempty"`
	// Router describes the uniform router under analysis for the
	// model-driven kinds (reliability, availability, rareevent).
	Router *RouterSpec `json:"router,omitempty"`
	// MC tunes the Monte-Carlo kinds.
	MC *MCSpec `json:"mc,omitempty"`
	// Sweep describes an N×M grid analysis.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Figure selects a paper figure to regenerate.
	Figure *FigureSpec `json:"figure,omitempty"`
	// Chaos embeds a chaos.Campaign document verbatim.
	Chaos json.RawMessage `json:"chaos,omitempty"`
	// Scenario embeds a router-and-timeline document (the original
	// config.File format) verbatim.
	Scenario json.RawMessage `json:"scenario,omitempty"`
}

// RouterSpec is the uniform-layout router description shared by the
// Monte-Carlo kinds.
type RouterSpec struct {
	// Arch is "dra" (default) or "bdr".
	Arch string `json:"arch,omitempty"`
	// N is the linecard count; M the number sharing LC 0's protocol.
	N int `json:"n"`
	M int `json:"m"`
	// Topology selects the interconnect graph (bus — the default —,
	// crossbar, mesh, fattree). Omitted and {"kind":"bus"} canonicalize
	// identically, so specs written before this axis existed keep their
	// content address.
	Topology *topology.Spec `json:"topology,omitempty"`
}

// MCSpec tunes the Monte-Carlo estimators (see montecarlo.Options for
// the semantics; zero values select the engine defaults).
type MCSpec struct {
	// Horizon is the simulated hours per replication (reliability,
	// availability). Default 40000.
	Horizon float64 `json:"horizon,omitempty"`
	// Reps is the replication count (or budget cap under
	// target_rel_err). Default 1000.
	Reps int `json:"reps,omitempty"`
	// Mu is the repair rate per hour (availability, rareevent).
	// Default 1/3.
	Mu float64 `json:"mu,omitempty"`
	// Seed is the master seed; default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Workers fans replications over goroutines. Estimates are
	// bit-identical for any value, so it is excluded from the job ID.
	Workers int `json:"workers,omitempty"`
	// Delta enables balanced failure biasing (rareevent kind).
	Delta float64 `json:"delta,omitempty"`
	// TargetRelErr switches to sequential stopping.
	TargetRelErr float64 `json:"target_rel_err,omitempty"`
	// Batch is the sequential-stopping/checkpoint batch size.
	Batch int `json:"batch,omitempty"`
	// CyclesPerRep is the regenerative cycles per replication
	// (rareevent kind).
	CyclesPerRep int `json:"cycles_per_rep,omitempty"`
}

// SweepSpec describes an N×M grid analysis (the dramodel -sweep mode).
type SweepSpec struct {
	// Analysis is "reliability", "availability" or "mttf".
	Analysis string `json:"analysis"`
	// NLo..NHi × MLo..MHi is the inclusive grid; cells with M > N are
	// skipped.
	NLo int `json:"n_lo"`
	NHi int `json:"n_hi"`
	MLo int `json:"m_lo"`
	MHi int `json:"m_hi"`
	// T is the evaluation time for reliability (default 40000).
	T float64 `json:"t,omitempty"`
	// Mu is the repair rate for availability (default 1/3).
	Mu float64 `json:"mu,omitempty"`
	// Workers sizes the sweep pool; excluded from the job ID.
	Workers int `json:"workers,omitempty"`
}

// FigureSpec selects a paper figure.
type FigureSpec struct {
	// Fig is 6, 7 or 8.
	Fig int `json:"fig"`
	// N and Bus apply to figure 8 (defaults 6 and 10e9).
	N   int     `json:"n,omitempty"`
	Bus float64 `json:"bus,omitempty"`
}

// ParseSpec decodes and validates a job spec. Unknown fields are
// rejected so a typo fails loudly instead of silently meaning defaults.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// LoadSpec reads and parses a job-spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	return ParseSpec(data)
}

// fieldErr names the offending field in every validation message, so a
// bad spec submitted over the API pinpoints its own defect.
func fieldErr(field, format string, args ...any) error {
	return fmt.Errorf("spec: %s: %s", field, fmt.Sprintf(format, args...))
}

// Validate rejects malformed specs with errors naming the offending
// field.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindFigure:
		return s.validateFigure()
	case KindSweep:
		return s.validateSweep()
	case KindReliability, KindAvailability, KindRareEvent, KindObservatory:
		return s.validateMC()
	case KindChaos:
		if len(s.Chaos) == 0 {
			return fieldErr("chaos", "required for kind %q", s.Kind)
		}
		if _, err := chaos.Parse(s.Chaos); err != nil {
			return fieldErr("chaos", "%v", err)
		}
	case KindScenario:
		if len(s.Scenario) == 0 {
			return fieldErr("scenario", "required for kind %q", s.Kind)
		}
		if _, err := Parse(s.Scenario); err != nil {
			return fieldErr("scenario", "%v", err)
		}
	case "":
		return fieldErr("kind", "required (one of %s)", strings.Join(Kinds(), ", "))
	default:
		return fieldErr("kind", "unknown kind %q (want one of %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	return nil
}

func (s Spec) validateFigure() error {
	if s.Figure == nil {
		return fieldErr("figure", "required for kind %q", s.Kind)
	}
	f := *s.Figure
	switch f.Fig {
	case 6, 7, 8:
	default:
		return fieldErr("figure.fig", "unknown figure %d (paper has 6, 7, 8)", f.Fig)
	}
	if f.Fig != 8 && (f.N != 0 || f.Bus != 0) {
		return fieldErr("figure.n", "n/bus apply only to figure 8")
	}
	if f.N < 0 || f.N == 1 {
		return fieldErr("figure.n", "must be at least 2, got %d", f.N)
	}
	if f.Bus < 0 {
		return fieldErr("figure.bus", "must be positive, got %g", f.Bus)
	}
	return nil
}

func (s Spec) validateSweep() error {
	if s.Sweep == nil {
		return fieldErr("sweep", "required for kind %q", s.Kind)
	}
	sw := *s.Sweep
	switch strings.ToLower(sw.Analysis) {
	case "reliability", "availability", "mttf":
	default:
		return fieldErr("sweep.analysis", "unknown analysis %q (want reliability, availability or mttf)", sw.Analysis)
	}
	if sw.NLo < 2 {
		return fieldErr("sweep.n_lo", "must be at least 2, got %d", sw.NLo)
	}
	if sw.NHi < sw.NLo {
		return fieldErr("sweep.n_hi", "must be at least n_lo (%d), got %d", sw.NLo, sw.NHi)
	}
	if sw.MLo < 1 {
		return fieldErr("sweep.m_lo", "must be at least 1, got %d", sw.MLo)
	}
	if sw.MHi < sw.MLo {
		return fieldErr("sweep.m_hi", "must be at least m_lo (%d), got %d", sw.MLo, sw.MHi)
	}
	if sw.MLo > sw.NHi {
		return fieldErr("sweep.m_lo", "grid %d:%d × %d:%d has no valid (N, M) cells", sw.NLo, sw.NHi, sw.MLo, sw.MHi)
	}
	if sw.T < 0 {
		return fieldErr("sweep.t", "must not be negative, got %g", sw.T)
	}
	if sw.Mu < 0 {
		return fieldErr("sweep.mu", "must not be negative, got %g", sw.Mu)
	}
	if sw.Workers < 0 {
		return fieldErr("sweep.workers", "must not be negative, got %d", sw.Workers)
	}
	return nil
}

func (s Spec) validateMC() error {
	if s.Router == nil {
		return fieldErr("router", "required for kind %q", s.Kind)
	}
	r := *s.Router
	if r.Arch != "" && !strings.EqualFold(r.Arch, "dra") && !strings.EqualFold(r.Arch, "bdr") {
		return fieldErr("router.arch", "unknown arch %q (want dra or bdr)", r.Arch)
	}
	if r.N < 2 {
		return fieldErr("router.n", "must be at least 2, got %d", r.N)
	}
	if r.M < 1 || r.M > r.N {
		return fieldErr("router.m", "must be within [1, %d], got %d", r.N, r.M)
	}
	if r.Topology != nil {
		if err := r.Topology.Validate(r.N); err != nil {
			var fe *topology.FieldError
			if errors.As(err, &fe) {
				return fieldErr("router.topology."+fe.Field, "%s", fe.Msg)
			}
			return fieldErr("router.topology", "%v", err)
		}
	}
	mc := MCSpec{}
	if s.MC != nil {
		mc = *s.MC
	}
	if mc.Horizon < 0 {
		return fieldErr("mc.horizon", "must not be negative, got %g", mc.Horizon)
	}
	if mc.Reps < 0 {
		return fieldErr("mc.reps", "must not be negative, got %d", mc.Reps)
	}
	if mc.Mu < 0 {
		return fieldErr("mc.mu", "must not be negative, got %g", mc.Mu)
	}
	if mc.Workers < 0 {
		return fieldErr("mc.workers", "must not be negative, got %d", mc.Workers)
	}
	if mc.Delta < 0 || mc.Delta >= 0.5 {
		return fieldErr("mc.delta", "must be within [0, 0.5), got %g", mc.Delta)
	}
	if mc.Delta > 0 && s.Kind != KindRareEvent && s.Kind != KindObservatory {
		return fieldErr("mc.delta", "failure biasing applies only to kinds %q and %q", KindRareEvent, KindObservatory)
	}
	if mc.TargetRelErr < 0 || mc.TargetRelErr >= 1 {
		return fieldErr("mc.target_rel_err", "must be within [0, 1), got %g", mc.TargetRelErr)
	}
	if mc.Batch < 0 {
		return fieldErr("mc.batch", "must not be negative, got %d", mc.Batch)
	}
	if mc.CyclesPerRep < 0 {
		return fieldErr("mc.cycles_per_rep", "must not be negative, got %d", mc.CyclesPerRep)
	}
	if mc.CyclesPerRep > 0 && s.Kind != KindRareEvent && s.Kind != KindObservatory {
		return fieldErr("mc.cycles_per_rep", "applies only to kinds %q and %q", KindRareEvent, KindObservatory)
	}
	return nil
}

// Normalize returns a copy with every defaulted field made explicit, so
// that a spec relying on defaults and one spelling them out canonicalize
// identically. It assumes Validate passed.
func (s Spec) Normalize() Spec {
	out := s
	if s.Router != nil {
		r := *s.Router
		if r.Arch == "" {
			r.Arch = "dra"
		}
		r.Arch = strings.ToLower(r.Arch)
		if r.Topology != nil {
			// Defaulted dimensions become explicit; any spelling of the
			// bus collapses to an absent field, so pre-topology specs keep
			// their canonical bytes (and their cached results).
			t := r.Topology.Normalize(r.N)
			if t == (topology.Spec{}) {
				r.Topology = nil
			} else {
				r.Topology = &t
			}
		}
		out.Router = &r
	}
	switch s.Kind {
	case KindReliability, KindAvailability, KindRareEvent, KindObservatory:
		mc := MCSpec{}
		if s.MC != nil {
			mc = *s.MC
		}
		if mc.Horizon == 0 {
			mc.Horizon = 40000
		}
		if mc.Reps == 0 {
			mc.Reps = 1000
		}
		if mc.Seed == 0 {
			mc.Seed = 1
		}
		if mc.Mu == 0 && s.Kind != KindReliability {
			mc.Mu = 1.0 / 3
		}
		if s.Kind == KindReliability {
			// Reliability runs never repair; a stray mu must not split
			// the cache key.
			mc.Mu = 0
		}
		if s.Kind == KindRareEvent || s.Kind == KindObservatory {
			// The regenerative estimator's replication unit is the
			// repair cycle; the horizon is ignored and must not split
			// the cache key either.
			mc.Horizon = 0
		}
		out.MC = &mc
	case KindSweep:
		sw := *s.Sweep
		sw.Analysis = strings.ToLower(sw.Analysis)
		if sw.T == 0 && sw.Analysis == "reliability" {
			sw.T = 40000
		}
		if sw.Mu == 0 && sw.Analysis == "availability" {
			sw.Mu = 1.0 / 3
		}
		out.Sweep = &sw
	case KindFigure:
		f := *s.Figure
		if f.Fig == 8 {
			if f.N == 0 {
				f.N = 6
			}
			if f.Bus == 0 {
				f.Bus = 10e9
			}
		}
		out.Figure = &f
	case KindChaos:
		// Round-trip through the typed campaign: key order, whitespace
		// and omitted defaults all collapse to one canonical encoding.
		if c, err := chaos.Parse(s.Chaos); err == nil {
			if b, err := json.Marshal(c); err == nil {
				out.Chaos = b
			}
		}
	case KindScenario:
		if f, err := Parse(s.Scenario); err == nil {
			if b, err := json.Marshal(f); err == nil {
				out.Scenario = b
			}
		}
	}
	return out
}

// Canonical returns the canonical encoding of the spec: normalized,
// with the result-irrelevant fields (priority, worker counts) zeroed,
// marshalled compactly with the fixed struct field order. Two requests
// for the same computation produce identical canonical bytes.
func (s Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Normalize()
	n.Priority = 0
	if n.MC != nil {
		mc := *n.MC
		mc.Workers = 0
		n.MC = &mc
	}
	if n.Sweep != nil {
		sw := *n.Sweep
		sw.Workers = 0
		n.Sweep = &sw
	}
	return json.Marshal(n)
}

// JobID derives the deterministic content address of the spec: the hex
// SHA-256 of its canonical encoding. Identical computations — however
// the request was spelled — share one ID, which is what makes the
// result store content-addressed.
func (s Spec) JobID() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
