package config

import (
	"os"
	"path/filepath"
	"testing"
)

const sample = `{
  "arch": "dra",
  "protocols": ["ethernet", "ethernet", "sonet", "atm"],
  "load": 0.15,
  "seed": 7,
  "events": [
    {"at": 100, "action": "fail", "lc": 0, "component": "SRU"},
    {"at": 200, "action": "fail-bus"},
    {"at": 300, "action": "repair-bus"},
    {"at": 400, "action": "repair", "lc": 0}
  ]
}`

func TestParseAndBuild(t *testing.T) {
	f, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	r, sc, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLCs() != 4 {
		t.Fatalf("NumLCs = %d", r.NumLCs())
	}
	if r.OfferedLoad(0) != 0.15*r.LC(0).Capacity() {
		t.Fatal("load not installed")
	}
	samples := sc.Play(r)
	if len(samples) != 4 {
		t.Fatalf("samples = %d", len(samples))
	}
	if !samples[0].Up[0] { // SRU covered
		t.Fatal("step 0: LC0 should be covered")
	}
	if samples[1].Up[0] { // bus down: uncovered
		t.Fatal("step 1: LC0 should be down")
	}
	if !samples[3].Up[0] {
		t.Fatal("step 3: LC0 should be repaired")
	}
}

func TestParseUniformShorthand(t *testing.T) {
	f, err := Parse([]byte(`{"n": 6, "m": 3, "arch": "bdr"}`))
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLCs() != 6 {
		t.Fatalf("NumLCs = %d", r.NumLCs())
	}
	if r.LC(0).Arch().String() != "BDR" {
		t.Fatal("arch not honoured")
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	bad := []string{
		`{`,
		`{"unknown_field": 1, "n": 4}`,
		`{"n": 4, "arch": "quantum"}`,
		`{"protocols": ["ethernet"]}`,
		`{"protocols": ["ethernet", "warp"]}`,
		`{"n": 4, "load": 1.5}`,
		`{"n": 4, "loads": [0.1]}`,
		`{"n": 4, "events": [{"at": 1, "action": "explode"}]}`,
		`{"n": 4, "events": [{"at": 1, "action": "fail", "lc": 9, "component": "SRU"}]}`,
		`{"n": 4, "events": [{"at": 1, "action": "fail", "lc": 0, "component": "FLUX"}]}`,
		`{"n": 4, "events": [{"at": -1, "action": "fail-bus"}]}`,
		`{}`,
	}
	for i, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Fatalf("case %d accepted: %s", i, doc)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Events) != 4 {
		t.Fatalf("events = %d", len(f.Events))
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBuildWithCapacitiesAndFabricEvents(t *testing.T) {
	doc := `{
	  "n": 4, "m": 2,
	  "lc_capacity": 40e9,
	  "bus_capacity": 20e9,
	  "events": [
	    {"at": 10, "action": "fail-fabric-card", "card": 0},
	    {"at": 20, "action": "repair-fabric-card", "card": 0},
	    {"at": 30, "action": "fail-fabric-port", "lc": 1},
	    {"at": 40, "action": "repair-fabric-port", "lc": 1},
	    {"at": 50, "action": "fail", "lc": 1, "component": "LFE"},
	    {"at": 60, "action": "repair-component", "lc": 1, "component": "LFE"}
	  ]
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	r, sc, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r.LC(0).Capacity() != 40e9 {
		t.Fatal("lc capacity not honoured")
	}
	if r.Bus().Config().DataCapacity != 20e9 {
		t.Fatal("bus capacity not honoured")
	}
	samples := sc.Play(r)
	for i, s := range samples {
		for lc, up := range s.Up {
			if !up {
				t.Fatalf("step %d (%s): LC%d down — every event here is absorbable", i, s.Label, lc)
			}
		}
	}
	if !r.Fabric().PortUp(1) {
		t.Fatal("fabric port not repaired")
	}
}
