package fleet

// The worker side of the fleet protocol: register, claim, run with
// heartbeat renewal (shipping engine checkpoints), complete or abandon.
// A worker survives coordinator restarts (every call retries with
// backoff) and makes its own death cheap: whatever it was running is
// re-dispatched by lease expiry, resuming from the last checkpoint it
// shipped — so kill -9 on a worker looks exactly like the SIGTERM
// drain the single-process server already handles.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/config"
	"repro/internal/httpretry"
)

// Cancellation causes a worker applies to a running assignment.
var (
	errLeaseLost   = errors.New("fleet: lease lost")
	errWorkerDrain = errors.New("fleet: worker draining")
)

// statusError is a definitive non-2xx coordinator verdict that survived
// the retry budget (410s are reported separately as gone).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// ExecuteRequest is one unit of work handed to the execution callback.
type ExecuteRequest struct {
	Job  string
	Spec config.Spec
	// Shard, when non-nil, selects a deterministic slice of the job;
	// nil runs the job whole.
	Shard *ShardSpec
	// CheckpointPath is the worker-local checkpoint file: pre-seeded
	// with the coordinator's recovery bytes on resume, written by the
	// engine at batch boundaries, shipped back with each heartbeat.
	CheckpointPath string
	// Progress forwards a note to the job's event stream (nil-safe).
	Progress func(string)
}

// ExecuteFunc runs one unit of work. The facade (repro.FleetExecutor)
// provides it, keeping the dependency arrow facade → fleet.
type ExecuteFunc func(ctx context.Context, req ExecuteRequest) (json.RawMessage, error)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// ID names the worker in leases and status output (required).
	ID string
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Execute runs claimed work (required).
	Execute ExecuteFunc
	// StateDir holds worker-local checkpoint scratch; "" uses a temp dir.
	StateDir string
	// Client is the HTTP transport; nil uses a 30s-timeout default.
	Client *http.Client
	// Retry tunes the backoff policy of every coordinator call.
	Retry httpretry.Options
	// Poll overrides the claim-poll interval (default: the heartbeat
	// the coordinator advertises).
	Poll time.Duration
	// Log receives progress lines; nil discards.
	Log func(format string, args ...any)
}

// Worker claims and executes fleet assignments until its context ends.
type Worker struct {
	opt    WorkerOptions
	client *httpretry.Client
	hb     time.Duration
}

// NewWorker builds a Worker.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.ID == "" || opt.Coordinator == "" || opt.Execute == nil {
		return nil, fmt.Errorf("fleet: worker needs ID, Coordinator, and Execute")
	}
	hc := opt.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{opt: opt, client: &httpretry.Client{HC: hc, Opt: opt.Retry}}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.opt.Log != nil {
		w.opt.Log(format, args...)
	}
}

// post sends a JSON request and decodes a JSON response. gone=true maps
// HTTP 410 (lease expired / job canceled).
func (w *Worker) post(ctx context.Context, path string, req, out any) (gone bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, err
	}
	resp, err := w.client.Post(ctx, w.opt.Coordinator+path, "application/json", body)
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusGone:
		return true, nil
	case resp.StatusCode == http.StatusNoContent:
		return false, nil
	case resp.StatusCode/100 != 2:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return false, &statusError{code: resp.StatusCode, msg: fmt.Sprintf("fleet: %s: %s: %s", path, resp.Status, msg)}
	}
	if out != nil {
		return false, json.NewDecoder(resp.Body).Decode(out)
	}
	return false, nil
}

// Run is the worker main loop: register, then claim/execute until ctx
// is done. Coordinator unavailability is absorbed by retry + the poll
// cadence, never fatal — the worker keeps polling until the
// coordinator returns.
func (w *Worker) Run(ctx context.Context) error {
	stateDir := w.opt.StateDir
	if stateDir == "" {
		d, err := os.MkdirTemp("", "fleet-worker-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		stateDir = d
	} else if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return err
	}

	var reg RegisterResponse
	if _, err := w.post(ctx, "/v1/fleet/register", RegisterRequest{Worker: w.opt.ID}, &reg); err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("fleet: registering with %s: %w", w.opt.Coordinator, err)
	}
	w.hb = time.Duration(reg.HeartbeatMs) * time.Millisecond
	if w.hb <= 0 {
		w.hb = DefaultLeaseTTL / 3
	}
	poll := w.opt.Poll
	if poll <= 0 {
		poll = w.hb
	}
	w.logf("worker %s registered with %s (lease %dms, heartbeat %s)", w.opt.ID, w.opt.Coordinator, reg.LeaseTTLMs, w.hb)

	for ctx.Err() == nil {
		var a Assignment
		gone, err := w.post(ctx, "/v1/fleet/claim", ClaimRequest{Worker: w.opt.ID}, &a)
		switch {
		case ctx.Err() != nil:
			return nil
		case err != nil || gone:
			w.logf("worker %s: claim: %v", w.opt.ID, err)
			sleepCtx(ctx, poll)
			continue
		case a.Lease == "":
			sleepCtx(ctx, poll)
			continue
		}
		w.runAssignment(ctx, stateDir, a)
	}
	return nil
}

// runAssignment executes one lease to completion, renewal by renewal.
func (w *Worker) runAssignment(ctx context.Context, stateDir string, a Assignment) {
	var spec config.Spec
	if err := json.Unmarshal(a.Spec, &spec); err != nil {
		w.complete(ctx, a, nil, fmt.Errorf("fleet: decoding spec: %w", err))
		return
	}
	ckptPath := filepath.Join(stateDir, leaseFile(a))
	if len(a.Checkpoint) > 0 {
		if err := os.WriteFile(ckptPath, a.Checkpoint, 0o644); err != nil {
			w.logf("worker %s: seeding checkpoint: %v", w.opt.ID, err)
		}
	}
	defer os.Remove(ckptPath)

	jctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)

	unit := "job " + short(a.Job)
	if a.Shard != nil {
		unit = fmt.Sprintf("job %s shard %d/%d", short(a.Job), a.Shard.Index+1, a.Shard.Count)
	}
	w.logf("worker %s: claimed %s (lease %s)", w.opt.ID, unit, a.Lease)

	type outcome struct {
		result json.RawMessage
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := w.opt.Execute(jctx, ExecuteRequest{
			Job:            a.Job,
			Spec:           spec,
			Shard:          a.Shard,
			CheckpointPath: ckptPath,
			Progress: func(note string) {
				w.renewAsync(ctx, a, RenewRequest{Worker: w.opt.ID, Lease: a.Lease, Note: note})
			},
		})
		done <- outcome{res, err}
	}()

	hb := time.NewTicker(w.hb)
	defer hb.Stop()
	var lastShipped []byte
	for {
		select {
		case <-ctx.Done():
			// Drain: stop the engine (it checkpoints at the next batch
			// boundary), then hand the lease back gracefully with the
			// final state so the unit requeues immediately.
			cancel(errWorkerDrain)
			<-done
			req := RenewRequest{Worker: w.opt.ID, Lease: a.Lease, Abandon: true, Note: fmt.Sprintf("worker %s draining", w.opt.ID)}
			if data, err := os.ReadFile(ckptPath); err == nil && len(data) > 0 {
				req.Checkpoint = data
			}
			// The worker context is gone; give the handback its own
			// short deadline.
			rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
			w.post(rctx, "/v1/fleet/renew", req, nil)
			rcancel()
			w.logf("worker %s: drained, abandoned %s", w.opt.ID, unit)
			return

		case <-hb.C:
			req := RenewRequest{Worker: w.opt.ID, Lease: a.Lease}
			if data, err := os.ReadFile(ckptPath); err == nil && len(data) > 0 && !bytes.Equal(data, lastShipped) {
				req.Checkpoint = data
				lastShipped = data
			}
			gone, err := w.post(ctx, "/v1/fleet/renew", req, nil)
			if gone {
				// Expired or canceled: abandon the run, discard the result.
				w.logf("worker %s: lease %s gone, abandoning %s", w.opt.ID, a.Lease, unit)
				cancel(errLeaseLost)
				<-done
				return
			}
			if err != nil {
				w.logf("worker %s: renew: %v", w.opt.ID, err)
			}

		case o := <-done:
			if cause := context.Cause(jctx); cause == errLeaseLost || cause == errWorkerDrain {
				return
			}
			w.complete(ctx, a, o.result, o.err)
			return
		}
	}
}

// complete delivers the outcome (success or failure) to the coordinator.
func (w *Worker) complete(ctx context.Context, a Assignment, result json.RawMessage, runErr error) {
	req := CompleteRequest{Worker: w.opt.ID, Lease: a.Lease, Result: result}
	if runErr != nil {
		req.Error = runErr.Error()
	}
	gone, err := w.post(ctx, "/v1/fleet/complete", req, nil)
	var se *statusError
	switch {
	case gone:
		w.logf("worker %s: lease %s expired before completion; result dropped by coordinator", w.opt.ID, a.Lease)
	case errors.As(err, &se) && se.code/100 == 4 && runErr == nil && result != nil:
		// The coordinator rejected the payload itself (e.g. the result
		// exceeded the body cap) — re-running the unit reproduces the
		// same rejection forever, so fail it cleanly instead of letting
		// the lease requeue-cycle.
		w.logf("worker %s: result rejected (%v); failing the unit", w.opt.ID, err)
		w.complete(ctx, a, nil, fmt.Errorf("fleet: result rejected by coordinator: %v", err))
	case err != nil:
		// Coordinator unreachable past the retry budget: the lease will
		// expire and the unit re-runs deterministically elsewhere.
		w.logf("worker %s: complete: %v (lease will expire and requeue)", w.opt.ID, err)
	default:
		w.logf("worker %s: completed lease %s", w.opt.ID, a.Lease)
	}
}

// renewAsync fires a best-effort note-carrying renew without blocking
// the engine's progress callback.
func (w *Worker) renewAsync(ctx context.Context, a Assignment, req RenewRequest) {
	go w.post(ctx, "/v1/fleet/renew", req, nil)
}

func leaseFile(a Assignment) string {
	if a.Shard != nil {
		return fmt.Sprintf("%s-s%d.ckpt", a.Job, a.Shard.Index)
	}
	return a.Job + ".ckpt"
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
