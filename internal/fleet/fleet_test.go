package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// fakeBackend is an in-memory scheduler for lease edge-case tests.
type fakeBackend struct {
	mu          sync.Mutex
	queue       []jobs.ExternalJob
	active      map[string]bool
	completed   map[string]json.RawMessage
	failed      map[string]string
	requeued    map[string]int
	checkpoints map[string][]byte
	notes       map[string][]string
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		active:      make(map[string]bool),
		completed:   make(map[string]json.RawMessage),
		failed:      make(map[string]string),
		requeued:    make(map[string]int),
		checkpoints: make(map[string][]byte),
		notes:       make(map[string][]string),
	}
}

func (b *fakeBackend) enqueue(id string, spec config.Spec, ckpt []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.queue = append(b.queue, jobs.ExternalJob{ID: id, Spec: spec, Checkpoint: ckpt})
}

func (b *fakeBackend) ClaimExternal(worker string) (jobs.ExternalJob, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return jobs.ExternalJob{}, false
	}
	j := b.queue[0]
	b.queue = b.queue[1:]
	b.active[j.ID] = true
	return j, true
}

func (b *fakeBackend) CompleteExternal(id string, result json.RawMessage) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.active[id] {
		return jobs.ErrNotLeased
	}
	if _, dup := b.completed[id]; dup {
		return fmt.Errorf("double completion of %s", id)
	}
	b.completed[id] = result
	b.active[id] = false
	return nil
}

func (b *fakeBackend) FailExternal(id, msg string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failed[id] = msg
	b.active[id] = false
	return nil
}

func (b *fakeBackend) RequeueExternal(id, note string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.requeued[id]++
	return nil
}

func (b *fakeBackend) JobActive(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active[id]
}

func (b *fakeBackend) cancel(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.active[id] = false
}

func (b *fakeBackend) PublishExternal(id, note string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.notes[id] = append(b.notes[id], note)
}

func (b *fakeBackend) SaveExternalCheckpoint(id string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.checkpoints[id] = append([]byte(nil), data...)
	return nil
}

func (b *fakeBackend) result(id string) (json.RawMessage, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.completed[id]
	return r, ok
}

// clock is a manual test clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_000_000, 0)} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testSpec() config.Spec {
	return config.Spec{Kind: "reliability"}
}

// shard2 plans every job into two shards.
func shard2(spec config.Spec, workers int) []ShardSpec {
	return []ShardSpec{{Index: 0, Count: 2, Lo: 0, Hi: 50}, {Index: 1, Count: 2, Lo: 50, Hi: 100}}
}

// concatMerge concatenates shard payloads (stands in for the real
// fold-in-order merge).
func concatMerge(spec config.Spec, parts []json.RawMessage) (json.RawMessage, error) {
	out := []byte("[")
	for i, p := range parts {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, p...)
	}
	return append(out, ']'), nil
}

func newTestCoordinator(b *fakeBackend, clk *clock, sharded bool) *Coordinator {
	opt := Options{
		Backend:  b,
		LeaseTTL: 10 * time.Second,
		Now:      clk.now,
	}
	if sharded {
		opt.Planner = shard2
		opt.Merger = concatMerge
	}
	return New(opt)
}

func TestWholeJobClaimCompleteRoundTrip(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, false)
	b.enqueue("j1", testSpec(), nil)

	a, err := c.Claim("w1")
	if err != nil || a == nil {
		t.Fatalf("claim: %v %v", a, err)
	}
	if a.Shard != nil {
		t.Fatal("unplanned job should claim whole")
	}
	if a.LeaseTTLMs != 10000 {
		t.Fatalf("lease ttl %d", a.LeaseTTLMs)
	}
	if err := c.Complete(CompleteRequest{Worker: "w1", Lease: a.Lease, Result: json.RawMessage(`{"ok":1}`)}); err != nil {
		t.Fatal(err)
	}
	if r, ok := b.result("j1"); !ok || string(r) != `{"ok":1}` {
		t.Fatalf("result not settled: %q %v", r, ok)
	}
	if c.LeasesActive() != 0 {
		t.Fatal("lease not released on complete")
	}
}

// Renew racing expiry: a renewal that lands before the expiry tick
// keeps the lease; one that lands after loses it, and the unit has
// already been requeued exactly once.
func TestRenewRacesExpiry(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, false)
	b.enqueue("j1", testSpec(), nil)
	a, _ := c.Claim("w1")

	// Renewal just inside the TTL extends the lease…
	clk.advance(9 * time.Second)
	if err := c.Renew(RenewRequest{Worker: "w1", Lease: a.Lease}); err != nil {
		t.Fatalf("in-TTL renew rejected: %v", err)
	}
	// …so the expiry scan 9s later (18s after claim, 9s after renew)
	// must NOT reclaim it.
	clk.advance(9 * time.Second)
	c.ExpireTick()
	if err := c.Renew(RenewRequest{Worker: "w1", Lease: a.Lease}); err != nil {
		t.Fatalf("renewed lease expired anyway: %v", err)
	}

	// Now go silent past the TTL: the tick reclaims, the late renew is
	// rejected, and the job is pending again.
	clk.advance(11 * time.Second)
	c.ExpireTick()
	if err := c.Renew(RenewRequest{Worker: "w1", Lease: a.Lease}); err != ErrLeaseExpired {
		t.Fatalf("expected ErrLeaseExpired, got %v", err)
	}
	st := c.Status()
	if st.Expirations != 1 || st.Requeues != 1 {
		t.Fatalf("expirations %d requeues %d", st.Expirations, st.Requeues)
	}
	// The reclaimed unit re-leases to another worker.
	a2, err := c.Claim("w2")
	if err != nil || a2 == nil {
		t.Fatalf("reclaim failed: %v %v", a2, err)
	}
	if a2.Job != "j1" {
		t.Fatalf("reclaim got %s", a2.Job)
	}
}

// Double-claim of the same shard must be impossible: two workers get
// the two distinct shards, a third gets nothing, and after one lease
// expires exactly that shard (and only it) is claimable again.
func TestNoDoubleClaimOfShard(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, true)
	b.enqueue("j1", testSpec(), nil)

	a1, _ := c.Claim("w1")
	a2, _ := c.Claim("w2")
	if a1 == nil || a2 == nil || a1.Shard == nil || a2.Shard == nil {
		t.Fatalf("expected two shard claims: %v %v", a1, a2)
	}
	if a1.Shard.Index == a2.Shard.Index {
		t.Fatalf("same shard leased twice: %d", a1.Shard.Index)
	}
	if a3, _ := c.Claim("w3"); a3 != nil {
		t.Fatalf("third claim should find nothing, got shard %v", a3.Shard)
	}

	// w1 goes silent; only its shard is reclaimable.
	clk.advance(11 * time.Second)
	c.Renew(RenewRequest{Worker: "w2", Lease: a2.Lease}) // keep w2 alive? (renew after expiry window)
	c.ExpireTick()
	a4, _ := c.Claim("w3")
	if a4 == nil || a4.Shard == nil || a4.Shard.Index != a1.Shard.Index {
		t.Fatalf("reclaim should hand back shard %d, got %v", a1.Shard.Index, a4)
	}
	if a5, _ := c.Claim("w4"); a5 != nil {
		t.Fatal("both shards leased again; nothing should remain")
	}
}

// A worker completing after its lease expired must never double-count:
// if the re-run already delivered, the late result is verified against
// it; either way the merge sees each shard exactly once.
func TestLateCompletionIdempotentlyDropped(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, true)
	b.enqueue("j1", testSpec(), nil)

	a1, _ := c.Claim("w1") // shard 0
	a2, _ := c.Claim("w2") // shard 1

	// w1's lease expires; w3 reclaims shard 0 and completes it.
	clk.advance(11 * time.Second)
	c.ExpireTick()
	a3, _ := c.Claim("w3")
	if a3 == nil || a3.Shard.Index != a1.Shard.Index {
		t.Fatalf("reclaim mismatch: %v", a3)
	}
	if err := c.Complete(CompleteRequest{Worker: "w3", Lease: a3.Lease, Result: json.RawMessage(`"s0"`)}); err != nil {
		t.Fatal(err)
	}

	// The zombie w1 now delivers the same shard — identical bytes,
	// since shards are deterministic. It must be rejected with
	// ErrLeaseExpired and not merged twice.
	if err := c.Complete(CompleteRequest{Worker: "w1", Lease: a1.Lease, Result: json.RawMessage(`"s0"`)}); err != ErrLeaseExpired {
		t.Fatalf("late completion accepted: %v", err)
	}
	st := c.Status()
	if st.LateResults != 1 {
		t.Fatalf("late results %d", st.LateResults)
	}

	// Renew from w2 (also expired above) is rejected; its shard re-runs.
	if err := c.Renew(RenewRequest{Worker: "w2", Lease: a2.Lease}); err != ErrLeaseExpired {
		t.Fatalf("zombie renew accepted: %v", err)
	}
	a4, _ := c.Claim("w3")
	if a4 == nil || a4.Shard.Index != a2.Shard.Index {
		t.Fatalf("shard 1 not reclaimable: %v", a4)
	}
	if err := c.Complete(CompleteRequest{Worker: "w3", Lease: a4.Lease, Result: json.RawMessage(`"s1"`)}); err != nil {
		t.Fatal(err)
	}
	r, ok := b.result("j1")
	if !ok {
		t.Fatal("job not settled after all shards")
	}
	if string(r) != `["s0","s1"]` {
		t.Fatalf("merged result %q — a shard was double-counted or lost", r)
	}
}

// Graceful abandon (worker drain) requeues immediately, without
// waiting out the TTL, and ships the final checkpoint.
func TestAbandonRequeuesImmediatelyWithCheckpoint(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, false)
	b.enqueue("j1", testSpec(), nil)
	a, _ := c.Claim("w1")

	if err := c.Renew(RenewRequest{Worker: "w1", Lease: a.Lease, Abandon: true, Checkpoint: []byte(`{"reps_done":40}`)}); err != nil {
		t.Fatal(err)
	}
	if string(b.checkpoints["j1"]) != `{"reps_done":40}` {
		t.Fatalf("checkpoint not persisted: %q", b.checkpoints["j1"])
	}
	a2, _ := c.Claim("w2")
	if a2 == nil || a2.Job != "j1" {
		t.Fatalf("abandoned job not immediately reclaimable: %v", a2)
	}
	st := c.Status()
	if st.Requeues != 1 || st.Expirations != 0 {
		t.Fatalf("abandon should requeue without an expiration: %+v", st)
	}
}

// A canceled job tears down its leases: the worker's next renew gets
// 410 and no settle call reaches the backend.
func TestCancelInvalidatesLease(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, false)
	b.enqueue("j1", testSpec(), nil)
	a, _ := c.Claim("w1")

	b.cancel("j1")
	if err := c.Renew(RenewRequest{Worker: "w1", Lease: a.Lease}); err != ErrLeaseExpired {
		t.Fatalf("renew of canceled job: %v", err)
	}
	if err := c.Complete(CompleteRequest{Worker: "w1", Lease: a.Lease, Result: json.RawMessage(`1`)}); err != ErrLeaseExpired {
		t.Fatalf("complete of canceled job: %v", err)
	}
	if _, ok := b.result("j1"); ok {
		t.Fatal("canceled job settled")
	}
}

// Checkpoint shipped by heartbeat is handed to the next claimant after
// expiry — whole-job failover.
func TestExpiryHandsBackShippedCheckpoint(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, false)
	b.enqueue("j1", testSpec(), nil)
	a, _ := c.Claim("w1")
	if err := c.Renew(RenewRequest{Worker: "w1", Lease: a.Lease, Checkpoint: []byte(`{"reps_done":500}`)}); err != nil {
		t.Fatal(err)
	}
	clk.advance(11 * time.Second)
	c.ExpireTick()

	// The fake backend hands checkpoints back through ClaimExternal on
	// requeue; the real manager reads the persisted file. Simulate the
	// requeue → re-claim hop.
	if string(b.checkpoints["j1"]) != `{"reps_done":500}` {
		t.Fatalf("heartbeat checkpoint not persisted: %q", b.checkpoints["j1"])
	}
}

// An errored unit fails the whole job (determinism: the retry would
// fail identically).
func TestShardErrorFailsJob(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, true)
	b.enqueue("j1", testSpec(), nil)
	a, _ := c.Claim("w1")
	if err := c.Complete(CompleteRequest{Worker: "w1", Lease: a.Lease, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if b.failed["j1"] != "boom" {
		t.Fatalf("job not failed: %q", b.failed["j1"])
	}
	if a2, _ := c.Claim("w2"); a2 != nil {
		t.Fatalf("failed job still claimable: %v", a2)
	}
}

// Zero workers: claims return nil work, the status reports degraded,
// and a worker appearing later clears it.
func TestDegradedWithZeroWorkers(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, false)
	st := c.Status()
	if !st.Degraded || st.WorkersLive != 0 {
		t.Fatalf("fresh coordinator should be degraded: %+v", st)
	}
	c.Register("w1")
	st = c.Status()
	if st.Degraded || st.WorkersLive != 1 {
		t.Fatalf("live worker should clear degraded: %+v", st)
	}
	// Silence past the TTL re-degrades.
	clk.advance(11 * time.Second)
	st = c.Status()
	if !st.Degraded {
		t.Fatal("silent worker still counted live")
	}
}

// A resumable job (checkpoint attached) claims whole even when a
// planner is installed: sharding would discard the recovery state.
func TestCheckpointedJobClaimsWhole(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, true)
	b.enqueue("j1", testSpec(), []byte(`{"reps_done":7}`))
	a, _ := c.Claim("w1")
	if a == nil || a.Shard != nil {
		t.Fatalf("checkpointed job should claim whole: %v", a)
	}
	if string(a.Checkpoint) != `{"reps_done":7}` {
		t.Fatalf("checkpoint not handed to claimant: %q", a.Checkpoint)
	}
}

func TestStatusShardBookkeeping(t *testing.T) {
	b, clk := newFakeBackend(), newClock()
	c := newTestCoordinator(b, clk, true)
	b.enqueue("j1", testSpec(), nil)
	a1, _ := c.Claim("w1")
	c.Complete(CompleteRequest{Worker: "w1", Lease: a1.Lease, Result: json.RawMessage(`"s0"`)})
	st := c.Status()
	if len(st.Jobs) != 1 {
		t.Fatalf("jobs %v", st.Jobs)
	}
	j := st.Jobs[0]
	if j.Shards != 2 || j.Done != 1 || j.Pending != 1 || j.Leased != 0 {
		t.Fatalf("bookkeeping: %+v", j)
	}
}

// TestCoordinatorRunLoopAndTelemetry drives the real-clock Run loop:
// a claimed lease whose worker goes silent is reclaimed by the ticker,
// and the fleet-health series flows into the telemetry hub.
func TestCoordinatorRunLoopAndTelemetry(t *testing.T) {
	hub, err := telemetry.New(telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := newFakeBackend()
	c := New(Options{
		Backend:   b,
		LeaseTTL:  60 * time.Millisecond,
		Heartbeat: 15 * time.Millisecond,
		Telemetry: hub,
	})
	if c.LeaseTTL() != 60*time.Millisecond || c.Heartbeat() != 15*time.Millisecond {
		t.Fatalf("timing getters: %v %v", c.LeaseTTL(), c.Heartbeat())
	}

	c.Register("w1")
	if c.WorkersLive() != 1 {
		t.Fatalf("WorkersLive = %d", c.WorkersLive())
	}
	b.enqueue("j1", testSpec(), nil)
	a, err := c.Claim("w1")
	if err != nil || a == nil {
		t.Fatalf("claim: %v %v", a, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)

	// w1 never renews: the run loop must expire the lease and requeue.
	deadline := time.Now().Add(5 * time.Second)
	for c.Status().Expirations == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run loop never expired the silent lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := c.Status(); st.Requeues < 1 {
		t.Fatalf("requeues = %d, want ≥ 1", st.Requeues)
	}
	// The reclaimed unit is immediately claimable by another worker.
	if a2, err := c.Claim("w2"); err != nil || a2 == nil || a2.Job != "j1" {
		t.Fatalf("reclaim after expiry: %+v %v", a2, err)
	}

	// The hub has the fleet series with the gauge/counter families.
	qr, err := hub.Query("fleet", 0, 0)
	if err != nil || len(qr.Samples) == 0 {
		t.Fatalf("fleet series missing: %v", err)
	}
	last := qr.Samples[len(qr.Samples)-1]
	if _, ok := last.Gauges["fleet_leases_active"]; !ok {
		t.Fatalf("sample gauges = %v", last.Gauges)
	}
	var exp float64
	for _, s := range qr.Samples {
		exp += s.Counters["fleet_lease_expirations_total"]
	}
	if exp < 1 {
		t.Fatalf("expirations counter never flowed: %+v", qr.Samples)
	}
}
