package fleet

// Worker-side protocol tests against a scripted in-process coordinator:
// claim/execute/complete, heartbeat checkpoint shipping, drain abandon,
// lease-gone abort, and the rejected-result fast-fail. The real
// coordinator pairing is covered end-to-end in cmd/drad.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"
)

// fakeCoord speaks the coordinator's four routes with scriptable
// verdicts and records everything the worker sends.
type fakeCoord struct {
	t   *testing.T
	srv *httptest.Server

	mu        sync.Mutex
	assigns   []Assignment // handed out one per claim, then 204s
	renews    []RenewRequest
	completes []CompleteRequest
	// renewCode/completeCode override the 204 default (0 = 204);
	// completeCode applies only to result-carrying completes.
	renewCode    int
	completeCode int
	heartbeatMs  int64
}

func newFakeCoord(t *testing.T, assigns ...Assignment) *fakeCoord {
	f := &fakeCoord{t: t, assigns: assigns, heartbeatMs: 25}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		hb := f.heartbeatMs
		f.mu.Unlock()
		json.NewEncoder(w).Encode(RegisterResponse{LeaseTTLMs: 4 * hb, HeartbeatMs: hb})
	})
	mux.HandleFunc("/v1/fleet/claim", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if len(f.assigns) == 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		a := f.assigns[0]
		f.assigns = f.assigns[1:]
		json.NewEncoder(w).Encode(a)
	})
	mux.HandleFunc("/v1/fleet/renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.renews = append(f.renews, req)
		code := f.renewCode
		f.mu.Unlock()
		if code == 0 {
			code = http.StatusNoContent
		}
		w.WriteHeader(code)
	})
	mux.HandleFunc("/v1/fleet/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.completes = append(f.completes, req)
		code := f.completeCode
		f.mu.Unlock()
		if code == 0 || req.Error != "" {
			code = http.StatusNoContent
		}
		w.WriteHeader(code)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// wait polls cond (called under the lock) until true or 5s.
func (f *fakeCoord) wait(what string, cond func() bool) {
	f.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		f.mu.Lock()
		ok := cond()
		f.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.t.Fatalf("timed out waiting for %s", what)
}

func testAssignment(lease string) Assignment {
	return Assignment{
		Lease: lease, Job: "job-1",
		Spec: json.RawMessage(`{"kind":"reliability","router":{"n":2,"m":1}}`),
	}
}

// startWorker boots a Worker with the given execute func and returns a
// stop func that cancels it and waits for Run to return.
func startWorker(t *testing.T, f *fakeCoord, exec ExecuteFunc) (stop func()) {
	t.Helper()
	w, err := NewWorker(WorkerOptions{
		ID: "tw", Coordinator: f.srv.URL, Execute: exec,
		StateDir: t.TempDir(), Poll: 10 * time.Millisecond,
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker Run: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("worker did not stop")
		}
	}
}

func TestWorkerClaimExecuteComplete(t *testing.T) {
	f := newFakeCoord(t, testAssignment("L1"))
	stop := startWorker(t, f, func(ctx context.Context, req ExecuteRequest) (json.RawMessage, error) {
		if req.Job != "job-1" || req.Spec.Kind != "reliability" || req.Shard != nil {
			t.Errorf("bad request: %+v", req)
		}
		return json.RawMessage(`{"ok":true}`), nil
	})
	defer stop()
	f.wait("the completion", func() bool { return len(f.completes) == 1 })
	c := f.completes[0]
	if c.Worker != "tw" || c.Lease != "L1" || string(c.Result) != `{"ok":true}` || c.Error != "" {
		t.Fatalf("complete = %+v", c)
	}
}

func TestWorkerShipsChangedCheckpointsOnHeartbeat(t *testing.T) {
	a := testAssignment("L2")
	a.Checkpoint = []byte("seed-state")
	f := newFakeCoord(t, a)
	release := make(chan struct{})
	stop := startWorker(t, f, func(ctx context.Context, req ExecuteRequest) (json.RawMessage, error) {
		// The coordinator's recovery bytes must be pre-seeded at the path.
		if data, err := os.ReadFile(req.CheckpointPath); err != nil || string(data) != "seed-state" {
			t.Errorf("checkpoint not seeded: %q, %v", data, err)
		}
		os.WriteFile(req.CheckpointPath, []byte("progress-1"), 0o644)
		<-release
		return json.RawMessage(`"done"`), nil
	})
	defer stop()
	f.wait("a checkpoint-carrying renew", func() bool {
		for _, r := range f.renews {
			if string(r.Checkpoint) == "progress-1" && r.Lease == "L2" {
				return true
			}
		}
		return false
	})
	close(release)
	f.wait("the completion", func() bool { return len(f.completes) == 1 })
	// Unchanged checkpoints must not re-ship on every beat.
	f.mu.Lock()
	shipped := 0
	for _, r := range f.renews {
		if len(r.Checkpoint) > 0 {
			shipped++
		}
	}
	f.mu.Unlock()
	if shipped != 1 {
		t.Fatalf("checkpoint shipped %d times, want once", shipped)
	}
}

func TestWorkerDrainAbandonsWithCheckpoint(t *testing.T) {
	f := newFakeCoord(t, testAssignment("L3"))
	started := make(chan struct{})
	stop := startWorker(t, f, func(ctx context.Context, req ExecuteRequest) (json.RawMessage, error) {
		os.WriteFile(req.CheckpointPath, []byte("mid-run"), 0o644)
		close(started)
		<-ctx.Done() // the drain cancels the engine
		return nil, ctx.Err()
	})
	<-started
	stop() // SIGTERM equivalent: cancel the worker's context
	f.mu.Lock()
	defer f.mu.Unlock()
	var abandon *RenewRequest
	for i := range f.renews {
		if f.renews[i].Abandon {
			abandon = &f.renews[i]
		}
	}
	if abandon == nil {
		t.Fatalf("no abandon renew seen in %+v", f.renews)
	}
	if abandon.Lease != "L3" || string(abandon.Checkpoint) != "mid-run" {
		t.Fatalf("abandon = %+v, want lease L3 with the final checkpoint", abandon)
	}
	if len(f.completes) != 0 {
		t.Fatalf("drained worker still completed: %+v", f.completes)
	}
}

func TestWorkerAbortsWhenLeaseGone(t *testing.T) {
	f := newFakeCoord(t, testAssignment("L4"))
	f.renewCode = http.StatusGone
	canceled := make(chan error, 1)
	stop := startWorker(t, f, func(ctx context.Context, req ExecuteRequest) (json.RawMessage, error) {
		<-ctx.Done()
		canceled <- context.Cause(ctx)
		return json.RawMessage(`"too late"`), ctx.Err()
	})
	defer stop()
	select {
	case cause := <-canceled:
		if !errors.Is(cause, errLeaseLost) {
			t.Fatalf("engine canceled with %v, want errLeaseLost", cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine never canceled after 410 renew")
	}
	// The doomed result must not be delivered.
	time.Sleep(50 * time.Millisecond)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.completes) != 0 {
		t.Fatalf("aborted assignment still completed: %+v", f.completes)
	}
}

func TestWorkerFailsUnitOnRejectedResult(t *testing.T) {
	f := newFakeCoord(t, testAssignment("L5"))
	f.completeCode = http.StatusBadRequest // result-carrying completes rejected
	stop := startWorker(t, f, func(ctx context.Context, req ExecuteRequest) (json.RawMessage, error) {
		return json.RawMessage(`"oversized"`), nil
	})
	defer stop()
	f.wait("the error complete", func() bool {
		for _, c := range f.completes {
			if c.Error != "" {
				return true
			}
		}
		return false
	})
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.completes) != 2 {
		t.Fatalf("completes = %+v, want rejected result then error", f.completes)
	}
	if f.completes[1].Result != nil || f.completes[1].Error == "" {
		t.Fatalf("second complete = %+v, want error-only", f.completes[1])
	}
}

func TestWorkerProgressNotesRideRenews(t *testing.T) {
	f := newFakeCoord(t, testAssignment("L6"))
	stop := startWorker(t, f, func(ctx context.Context, req ExecuteRequest) (json.RawMessage, error) {
		req.Progress("halfway there")
		return json.RawMessage(`"done"`), nil
	})
	defer stop()
	f.wait("the note renew", func() bool {
		for _, r := range f.renews {
			if r.Note == "halfway there" {
				return true
			}
		}
		return false
	})
}

func TestNewWorkerValidation(t *testing.T) {
	exec := func(ctx context.Context, req ExecuteRequest) (json.RawMessage, error) { return nil, nil }
	for _, opt := range []WorkerOptions{
		{Coordinator: "http://x", Execute: exec},
		{ID: "w", Execute: exec},
		{ID: "w", Coordinator: "http://x"},
	} {
		if _, err := NewWorker(opt); err == nil {
			t.Fatalf("NewWorker(%+v) accepted", opt)
		}
	}
}
