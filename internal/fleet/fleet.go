// Package fleet is the dependability layer of the coordinator/worker
// split: time-bounded leases over jobs (or deterministic shards of
// jobs), heartbeat renewal, expiry-driven reclaim, and shard-result
// merge. It applies the DRA paper's discipline to drad itself — spare
// capacity (other workers) absorbs a unit failure (a killed worker)
// without losing work: an expired lease sends the shard or job back to
// the queue, the re-dispatched run is deterministic (shards) or resumes
// from the last heartbeat's checkpoint (whole jobs), and the merged
// result is bit-identical to an uninterrupted single-process run.
//
// The coordinator side (this file) owns worker registration/health, the
// lease table, and shard bookkeeping; it talks to the scheduler through
// the narrow Backend interface (implemented by jobs.Manager in
// coordinator mode). The worker side (worker.go) claims assignments
// over HTTP, renews by heartbeat — shipping engine checkpoints with
// each renewal — and completes or abandons.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Defaults. LeaseTTL is deliberately several heartbeats: one lost
// heartbeat must not requeue a healthy worker's shard.
const (
	DefaultLeaseTTL = 10 * time.Second
	wholeJob        = -1 // lease.shard for an unsharded claim
	maxTombstones   = 1024
)

// ErrLeaseExpired is returned to a worker whose lease is no longer
// valid: it expired and was reclaimed, the job was canceled, or the
// result arrived after a re-dispatch. The worker must abandon the run;
// the work is not lost — it was already requeued or completed by
// another worker.
var ErrLeaseExpired = errors.New("fleet: lease expired")

// ShardSpec is one deterministic slice of a job: replications [Lo, Hi)
// of a Monte-Carlo run, or cells [Lo, Hi) of a sweep grid. The split is
// safe because replication streams derive only from (seed, index) —
// see montecarlo.TrialStream — so a shard re-run after a worker death
// reproduces its outcomes exactly.
type ShardSpec struct {
	Index int    `json:"index"`
	Count int    `json:"count"`
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
}

// Planner decides how to shard a job across a fleet; nil or a plan of
// ≤1 shard claims the job whole. workers is the current live-worker
// count (a hint — correctness cannot depend on it, since any contiguous
// partition merges identically).
type Planner func(spec config.Spec, workers int) []ShardSpec

// Merger folds per-shard result payloads (in shard-index order) into
// the job's final result document. It must reproduce the standalone
// runner's document byte-for-byte.
type Merger func(spec config.Spec, parts []json.RawMessage) (json.RawMessage, error)

// Backend is the scheduler surface the coordinator drives, implemented
// by jobs.Manager in coordinator mode. Narrow by design: lease edge
// cases are tested against a fake.
type Backend interface {
	ClaimExternal(worker string) (jobs.ExternalJob, bool)
	CompleteExternal(id string, result json.RawMessage) error
	FailExternal(id, msg string) error
	RequeueExternal(id, note string) error
	JobActive(id string) bool
	PublishExternal(id, note string)
	SaveExternalCheckpoint(id string, data []byte) error
}

// --- wire types (worker ↔ coordinator HTTP protocol) ---

// RegisterRequest announces a worker; idempotent.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// RegisterResponse hands the worker the fleet timing parameters.
type RegisterResponse struct {
	LeaseTTLMs  int64 `json:"lease_ttl_ms"`
	HeartbeatMs int64 `json:"heartbeat_ms"`
}

// ClaimRequest asks for work.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// Assignment is one granted lease. Checkpoint, when non-empty, is the
// last persisted engine checkpoint of a previously interrupted run of
// this job — the worker seeds its local checkpoint file with it and the
// engine resumes bit-identically.
type Assignment struct {
	Lease       string          `json:"lease"`
	Job         string          `json:"job"`
	Spec        json.RawMessage `json:"spec"`
	Shard       *ShardSpec      `json:"shard,omitempty"`
	Checkpoint  []byte          `json:"checkpoint,omitempty"`
	LeaseTTLMs  int64           `json:"lease_ttl_ms"`
	HeartbeatMs int64           `json:"heartbeat_ms"`
}

// RenewRequest extends a lease (heartbeat). Checkpoint, when non-empty,
// is the engine's latest persisted state; the coordinator stores it so
// a later lease expiry re-dispatches from there rather than from
// scratch. Abandon releases the lease gracefully (worker drain) —
// the shard or job requeues immediately instead of waiting out the TTL.
type RenewRequest struct {
	Worker     string `json:"worker"`
	Lease      string `json:"lease"`
	Checkpoint []byte `json:"checkpoint,omitempty"`
	Abandon    bool   `json:"abandon,omitempty"`
	Note       string `json:"note,omitempty"`
}

// CompleteRequest delivers a finished lease's result (or error).
type CompleteRequest struct {
	Worker string          `json:"worker"`
	Lease  string          `json:"lease"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// --- coordinator ---

// Options configures a Coordinator.
type Options struct {
	Backend Backend
	// Planner shards claimable jobs; nil claims everything whole.
	Planner Planner
	// Merger folds shard results; required when Planner can return >1
	// shard.
	Merger Merger
	// LeaseTTL bounds how long a silent worker keeps a lease; 0 selects
	// DefaultLeaseTTL. Heartbeat is the renewal/poll cadence workers are
	// told to use; 0 selects LeaseTTL/3.
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	// Now is the clock (injectable for lease-edge tests); nil uses
	// time.Now.
	Now func() time.Time
	// Metrics receives the fleet_* families.
	Metrics *metrics.Registry
	// Telemetry, when non-nil, receives fleet-health samples (job id
	// "fleet") so `dractl top` shows the fleet next to the jobs.
	Telemetry *telemetry.Hub
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (o Options) heartbeat() time.Duration {
	if o.Heartbeat > 0 {
		return o.Heartbeat
	}
	return o.leaseTTL() / 3
}

type workerState struct {
	id       string
	lastSeen time.Time
}

type lease struct {
	id      string
	worker  string
	jobID   string
	shard   int // wholeJob or a plan index
	expires time.Time
}

// tombstone remembers where an expired lease pointed, so a late
// completion can be verified instead of silently double-counted.
type tombstone struct {
	jobID string
	shard int
}

// fleetJob is the coordinator's bookkeeping for one leased-out job.
type fleetJob struct {
	id      string
	spec    config.Spec
	specRaw json.RawMessage
	// plan is nil for whole-job claims; then the single unit of work is
	// shard index wholeJob.
	plan     []ShardSpec
	pending  []int // units awaiting (re)claim, ascending
	leased   map[int]string
	results  map[int]json.RawMessage
	requeues int
}

func (f *fleetJob) units() int {
	if f.plan == nil {
		return 1
	}
	return len(f.plan)
}

// Coordinator owns worker registration/health, the lease table, and
// shard bookkeeping.
type Coordinator struct {
	opt Options

	mu        sync.Mutex
	workers   map[string]*workerState
	leases    map[string]*lease
	jobs      map[string]*fleetJob
	tombs     map[string]tombstone
	tombOrder []string
	seq       uint64
	tick      uint64

	// Cumulative counts mirrored to metrics (counters are write-only).
	nExpirations uint64
	nRequeues    uint64
	nLate        uint64
	lastSampled  [4]uint64 // change detector for telemetry pushes

	workersLive  *metrics.Gauge
	leasesActive *metrics.Gauge
	expirations  *metrics.Counter
	requeues     *metrics.Counter
	lateResults  *metrics.CounterVec
	claims       *metrics.Counter
}

// New builds a Coordinator.
func New(opt Options) *Coordinator {
	if opt.Backend == nil {
		panic("fleet: Options.Backend is required")
	}
	reg := opt.Metrics
	return &Coordinator{
		opt:          opt,
		workers:      make(map[string]*workerState),
		leases:       make(map[string]*lease),
		jobs:         make(map[string]*fleetJob),
		tombs:        make(map[string]tombstone),
		workersLive:  reg.Gauge("fleet_workers_live", "Workers seen within the lease TTL."),
		leasesActive: reg.Gauge("fleet_leases_active", "Leases currently granted and unexpired."),
		expirations:  reg.Counter("fleet_lease_expirations_total", "Leases reclaimed because the holder stopped heartbeating."),
		requeues:     reg.Counter("fleet_requeues_total", "Work units sent back to the queue after lease expiry or abandonment."),
		lateResults:  reg.CounterVec("fleet_late_results_total", "Results arriving after their lease expired, by verdict.", "verdict"),
		claims:       reg.Counter("fleet_claims_total", "Leases granted to workers."),
	}
}

func (c *Coordinator) now() time.Time {
	if c.opt.Now != nil {
		return c.opt.Now()
	}
	return time.Now()
}

// LeaseTTL returns the configured lease TTL.
func (c *Coordinator) LeaseTTL() time.Duration { return c.opt.leaseTTL() }

// Heartbeat returns the renewal cadence workers are told to use.
func (c *Coordinator) Heartbeat() time.Duration { return c.opt.heartbeat() }

// Register records a worker (idempotent) and returns fleet timing.
func (c *Coordinator) Register(worker string) RegisterResponse {
	c.mu.Lock()
	c.touchLocked(worker)
	c.publishGaugesLocked()
	c.mu.Unlock()
	return RegisterResponse{
		LeaseTTLMs:  c.opt.leaseTTL().Milliseconds(),
		HeartbeatMs: c.opt.heartbeat().Milliseconds(),
	}
}

func (c *Coordinator) touchLocked(worker string) {
	w := c.workers[worker]
	if w == nil {
		w = &workerState{id: worker}
		c.workers[worker] = w
	}
	w.lastSeen = c.now()
}

// liveLocked counts workers seen within the lease TTL: a worker that
// misses every heartbeat for a whole TTL is treated like a failed unit.
func (c *Coordinator) liveLocked() int {
	cutoff := c.now().Add(-c.opt.leaseTTL())
	n := 0
	for _, w := range c.workers {
		if !w.lastSeen.Before(cutoff) {
			n++
		}
	}
	return n
}

// WorkersLive reports the current live-worker count (healthz).
func (c *Coordinator) WorkersLive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked()
}

// LeasesActive reports the number of granted, unexpired leases.
func (c *Coordinator) LeasesActive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// Claim hands the worker one unit of work, or nil when none is
// claimable. Re-claims of requeued shards take precedence over new
// jobs, so an interrupted job finishes before fresh work starts.
func (c *Coordinator) Claim(worker string) (*Assignment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker)

	// 1. A pending unit of an already-claimed job (requeued after an
	// expiry, or the not-yet-granted shards of a fresh plan).
	for _, id := range c.jobIDsLocked() {
		f := c.jobs[id]
		if len(f.pending) == 0 {
			continue
		}
		if !c.opt.Backend.JobActive(f.id) {
			// Canceled or settled behind our back: drop the bookkeeping.
			c.dropJobLocked(f, "")
			continue
		}
		return c.grantLocked(worker, f), nil
	}

	// 2. A fresh job from the scheduler.
	ext, ok := c.opt.Backend.ClaimExternal(worker)
	if !ok {
		c.publishGaugesLocked()
		return nil, nil
	}
	f := &fleetJob{
		id:      ext.ID,
		spec:    ext.Spec,
		leased:  make(map[int]string),
		results: make(map[int]json.RawMessage),
	}
	raw, err := json.Marshal(ext.Spec)
	if err != nil {
		c.opt.Backend.FailExternal(ext.ID, "fleet: encoding spec: "+err.Error())
		return nil, fmt.Errorf("fleet: encoding spec: %w", err)
	}
	f.specRaw = raw
	// A job with a checkpoint must continue whole — the checkpoint is
	// the recovery state, and sharding would discard it.
	if c.opt.Planner != nil && len(ext.Checkpoint) == 0 {
		if plan := c.opt.Planner(ext.Spec, max(1, c.liveLocked())); len(plan) > 1 {
			f.plan = plan
			for i := range plan {
				f.pending = append(f.pending, i)
			}
		}
	}
	if f.plan == nil {
		f.pending = []int{wholeJob}
	}
	c.jobs[f.id] = f
	a := c.grantLocked(worker, f)
	a.Checkpoint = ext.Checkpoint
	return a, nil
}

// jobIDsLocked returns job IDs in deterministic (insertion-id) order.
func (c *Coordinator) jobIDsLocked() []string {
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// grantLocked pops the lowest pending unit of f and leases it to
// worker. Caller holds mu and has verified len(f.pending) > 0.
func (c *Coordinator) grantLocked(worker string, f *fleetJob) *Assignment {
	unit := f.pending[0]
	f.pending = f.pending[1:]
	c.seq++
	l := &lease{
		id:      fmt.Sprintf("L%06d", c.seq),
		worker:  worker,
		jobID:   f.id,
		shard:   unit,
		expires: c.now().Add(c.opt.leaseTTL()),
	}
	c.leases[l.id] = l
	f.leased[unit] = l.id
	c.claims.Inc()
	a := &Assignment{
		Lease:       l.id,
		Job:         f.id,
		Spec:        f.specRaw,
		LeaseTTLMs:  c.opt.leaseTTL().Milliseconds(),
		HeartbeatMs: c.opt.heartbeat().Milliseconds(),
	}
	if unit != wholeJob {
		s := f.plan[unit]
		a.Shard = &s
		c.opt.Backend.PublishExternal(f.id, fmt.Sprintf("shard %d/%d leased to %s", unit+1, len(f.plan), worker))
	}
	c.publishGaugesLocked()
	return a
}

// Renew extends (or, with Abandon, releases) a lease. A non-empty
// checkpoint is persisted through the backend so the job's recovery
// state survives both worker and coordinator deaths.
func (c *Coordinator) Renew(req RenewRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(req.Worker)
	l, ok := c.leases[req.Lease]
	if !ok {
		return ErrLeaseExpired
	}
	f := c.jobs[l.jobID]
	if f == nil || !c.opt.Backend.JobActive(l.jobID) {
		// Canceled (or settled) underneath the lease: tear down.
		if f != nil {
			c.dropJobLocked(f, "")
		} else {
			delete(c.leases, req.Lease)
		}
		c.publishGaugesLocked()
		return ErrLeaseExpired
	}
	if len(req.Checkpoint) > 0 && l.shard == wholeJob {
		if err := c.opt.Backend.SaveExternalCheckpoint(l.jobID, req.Checkpoint); err != nil {
			c.opt.Backend.PublishExternal(l.jobID, "warning: checkpoint not persisted: "+err.Error())
		}
	}
	if req.Note != "" {
		c.opt.Backend.PublishExternal(l.jobID, req.Note)
	}
	if req.Abandon {
		c.releaseLocked(l, fmt.Sprintf("lease %s abandoned by %s, requeued", l.id, l.worker))
		return nil
	}
	l.expires = c.now().Add(c.opt.leaseTTL())
	return nil
}

// releaseLocked returns a lease's unit to pending (graceful abandon or
// expiry). Caller holds mu.
func (c *Coordinator) releaseLocked(l *lease, note string) {
	delete(c.leases, l.id)
	c.tombLocked(l)
	f := c.jobs[l.jobID]
	if f == nil {
		return
	}
	delete(f.leased, l.shard)
	f.pending = insertUnit(f.pending, l.shard)
	f.requeues++
	c.nRequeues++
	c.requeues.Inc()
	c.opt.Backend.PublishExternal(l.jobID, note)
	c.publishGaugesLocked()
}

// insertUnit adds unit to a sorted pending list (dedup-safe).
func insertUnit(pending []int, unit int) []int {
	i := sort.SearchInts(pending, unit)
	if i < len(pending) && pending[i] == unit {
		return pending
	}
	pending = append(pending, 0)
	copy(pending[i+1:], pending[i:])
	pending[i] = unit
	return pending
}

// tombLocked records where an expired/released lease pointed, bounded.
func (c *Coordinator) tombLocked(l *lease) {
	c.tombs[l.id] = tombstone{jobID: l.jobID, shard: l.shard}
	c.tombOrder = append(c.tombOrder, l.id)
	for len(c.tombOrder) > maxTombstones {
		delete(c.tombs, c.tombOrder[0])
		c.tombOrder = c.tombOrder[1:]
	}
}

// Complete settles a lease with a result or error. A completion whose
// lease already expired is never double-counted: if the re-dispatched
// unit already produced a result the late payload is compared against
// it (and the verdict recorded), otherwise it is dropped and the
// re-run's result stands.
func (c *Coordinator) Complete(req CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(req.Worker)
	l, ok := c.leases[req.Lease]
	if !ok {
		c.lateLocked(req)
		return ErrLeaseExpired
	}
	delete(c.leases, req.Lease)
	f := c.jobs[l.jobID]
	if f == nil || !c.opt.Backend.JobActive(l.jobID) {
		if f != nil {
			c.dropJobLocked(f, "")
		}
		c.publishGaugesLocked()
		return ErrLeaseExpired
	}
	delete(f.leased, l.shard)

	if req.Error != "" {
		// One failed unit fails the job: determinism means a retry would
		// fail identically, so there is nothing to recover.
		c.opt.Backend.FailExternal(f.id, req.Error)
		c.dropJobLocked(f, "")
		c.publishGaugesLocked()
		return nil
	}

	if l.shard == wholeJob {
		if err := c.opt.Backend.CompleteExternal(f.id, req.Result); err != nil {
			c.opt.Backend.PublishExternal(f.id, "fleet: settle: "+err.Error())
		}
		delete(c.jobs, f.id)
		c.publishGaugesLocked()
		return nil
	}

	f.results[l.shard] = req.Result
	c.opt.Backend.PublishExternal(f.id,
		fmt.Sprintf("shard %d/%d complete from %s (%d/%d done)",
			l.shard+1, len(f.plan), req.Worker, len(f.results), len(f.plan)))
	if len(f.results) == len(f.plan) {
		c.mergeLocked(f)
	}
	c.publishGaugesLocked()
	return nil
}

// mergeLocked folds a fully-resulted plan into the final document and
// settles the job. Caller holds mu.
func (c *Coordinator) mergeLocked(f *fleetJob) {
	parts := make([]json.RawMessage, len(f.plan))
	for i := range f.plan {
		parts[i] = f.results[i]
	}
	merged, err := c.opt.Merger(f.spec, parts)
	if err != nil {
		c.opt.Backend.FailExternal(f.id, "fleet: merging shards: "+err.Error())
	} else if err := c.opt.Backend.CompleteExternal(f.id, merged); err != nil {
		c.opt.Backend.PublishExternal(f.id, "fleet: settle: "+err.Error())
	}
	delete(c.jobs, f.id)
}

// lateLocked handles a completion for an unknown (expired) lease.
func (c *Coordinator) lateLocked(req CompleteRequest) {
	c.nLate++
	t, ok := c.tombs[req.Lease]
	if !ok {
		c.lateResults.With("unknown").Inc()
		return
	}
	verdict := "dropped"
	if f := c.jobs[t.jobID]; f != nil && t.shard != wholeJob {
		if prev, done := f.results[t.shard]; done {
			if bytes.Equal(prev, req.Result) {
				verdict = "identical"
			} else {
				verdict = "divergent"
			}
		}
	}
	c.lateResults.With(verdict).Inc()
	c.opt.Backend.PublishExternal(t.jobID,
		fmt.Sprintf("late result for lease %s from %s: %s (not double-counted)", req.Lease, req.Worker, verdict))
}

// dropJobLocked removes a job's bookkeeping and leases (cancel/failure
// paths). Caller holds mu.
func (c *Coordinator) dropJobLocked(f *fleetJob, note string) {
	for _, lid := range f.leased {
		if l := c.leases[lid]; l != nil {
			c.tombLocked(l)
		}
		delete(c.leases, lid)
	}
	if note != "" {
		c.opt.Backend.PublishExternal(f.id, note)
	}
	delete(c.jobs, f.id)
}

// ExpireTick reclaims every lease past its deadline: the unit returns
// to pending (counted as an expiration + requeue) and the next Claim
// re-dispatches it — from its last shipped checkpoint for whole jobs,
// from scratch (deterministically) for shards. Also refreshes gauges
// and pushes a fleet-health telemetry sample when state changed.
func (c *Coordinator) ExpireTick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for _, l := range c.leases {
		if now.After(l.expires) {
			c.nExpirations++
			c.expirations.Inc()
			c.releaseLocked(l, fmt.Sprintf("lease %s on %s expired (worker silent past TTL), requeued", l.id, l.worker))
		}
	}
	// A requeued unit whose job was canceled in the meantime is dropped
	// at the next Claim; no scan needed here.
	c.publishGaugesLocked()
	c.sampleLocked()
}

// Run drives ExpireTick on the heartbeat cadence until ctx is done.
func (c *Coordinator) Run(ctx interface{ Done() <-chan struct{} }) {
	t := time.NewTicker(c.opt.heartbeat())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.ExpireTick()
		}
	}
}

func (c *Coordinator) publishGaugesLocked() {
	c.workersLive.Set(float64(c.liveLocked()))
	c.leasesActive.Set(float64(len(c.leases)))
}

// sampleLocked pushes a fleet-health sample when state changed since
// the last push. Caller holds mu.
func (c *Coordinator) sampleLocked() {
	if c.opt.Telemetry == nil {
		return
	}
	cur := [4]uint64{uint64(c.liveLocked()), uint64(len(c.leases)), c.nExpirations, c.nRequeues}
	if cur == c.lastSampled && c.tick > 0 {
		return
	}
	deltaExp := cur[2] - c.lastSampled[2]
	deltaReq := cur[3] - c.lastSampled[3]
	c.lastSampled = cur
	c.tick++
	c.opt.Telemetry.Ingest(telemetry.Sample{
		Job:  "fleet",
		Kind: "fleet",
		Window: c.tick,
		Gauges: map[string]float64{
			"fleet_workers_live":  float64(cur[0]),
			"fleet_leases_active": float64(cur[1]),
		},
		Counters: map[string]float64{
			"fleet_lease_expirations_total": float64(deltaExp),
			"fleet_requeues_total":          float64(deltaReq),
		},
	})
}

// --- status (GET /v1/fleet, dractl fleet) ---

// WorkerStatus is one worker's health view.
type WorkerStatus struct {
	ID         string `json:"id"`
	Live       bool   `json:"live"`
	LastSeenMs int64  `json:"last_seen_ms"` // milliseconds ago
	Leases     int    `json:"leases"`
}

// LeaseStatus is one active lease.
type LeaseStatus struct {
	Lease       string `json:"lease"`
	Job         string `json:"job"`
	Worker      string `json:"worker"`
	Shard       int    `json:"shard"` // -1 for a whole-job lease
	ShardCount  int    `json:"shard_count,omitempty"`
	ExpiresInMs int64  `json:"expires_in_ms"`
}

// JobStatus is one leased-out job's shard progress.
type JobStatus struct {
	Job      string `json:"job"`
	Shards   int    `json:"shards"`
	Done     int    `json:"done"`
	Pending  int    `json:"pending"`
	Leased   int    `json:"leased"`
	Requeues int    `json:"requeues"`
}

// Status is the fleet-health document.
type Status struct {
	LeaseTTLMs  int64          `json:"lease_ttl_ms"`
	HeartbeatMs int64          `json:"heartbeat_ms"`
	WorkersLive int            `json:"workers_live"`
	Degraded    bool           `json:"degraded"`
	Workers     []WorkerStatus `json:"workers,omitempty"`
	Leases      []LeaseStatus  `json:"leases,omitempty"`
	Jobs        []JobStatus    `json:"jobs,omitempty"`
	Expirations uint64         `json:"lease_expirations"`
	Requeues    uint64         `json:"requeues"`
	LateResults uint64         `json:"late_results"`
}

// Status snapshots the fleet.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	cutoff := now.Add(-c.opt.leaseTTL())
	st := Status{
		LeaseTTLMs:  c.opt.leaseTTL().Milliseconds(),
		HeartbeatMs: c.opt.heartbeat().Milliseconds(),
		WorkersLive: c.liveLocked(),
		Expirations: c.nExpirations,
		Requeues:    c.nRequeues,
		LateResults: c.nLate,
	}
	st.Degraded = st.WorkersLive == 0
	perWorker := make(map[string]int)
	for _, l := range c.leases {
		perWorker[l.worker]++
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID:         w.id,
			Live:       !w.lastSeen.Before(cutoff),
			LastSeenMs: now.Sub(w.lastSeen).Milliseconds(),
			Leases:     perWorker[w.id],
		})
	}
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].ID < st.Workers[b].ID })
	for _, l := range c.leases {
		ls := LeaseStatus{
			Lease:       l.id,
			Job:         l.jobID,
			Worker:      l.worker,
			Shard:       l.shard,
			ExpiresInMs: l.expires.Sub(now).Milliseconds(),
		}
		if f := c.jobs[l.jobID]; f != nil && f.plan != nil {
			ls.ShardCount = len(f.plan)
		}
		st.Leases = append(st.Leases, ls)
	}
	sort.Slice(st.Leases, func(a, b int) bool { return st.Leases[a].Lease < st.Leases[b].Lease })
	for _, id := range c.jobIDsLocked() {
		f := c.jobs[id]
		st.Jobs = append(st.Jobs, JobStatus{
			Job:      f.id,
			Shards:   f.units(),
			Done:     len(f.results),
			Pending:  len(f.pending),
			Leased:   len(f.leased),
			Requeues: f.requeues,
		})
	}
	return st
}
