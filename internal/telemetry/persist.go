package telemetry

// Store persistence: each job's series is one JSON document in the
// content-addressed store under a key derived from the job ID, plus a
// fixed-key index document naming every persisted series. The store's
// atomic temp+rename writes make each flush crash-safe, and its LRU
// budget bounds the observatory's total disk footprint alongside the
// result cache.
//
// The drain contract: drad flushes the hub after the job manager
// drained — i.e. after every checkpointing engine wrote its final
// checkpoint and pushed its final window — so the persisted series ends
// exactly at the window the resumed run continues from. Ingest's
// monotone-window dedup then makes the merged series duplicate-free,
// and the per-batch sampling cadence makes it gap-free.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/store"
)

// seriesKey derives the store key of a job's telemetry series. The
// prefix is domain-separated from job-result keys (which are the job ID
// itself), so a series can never alias a result document.
func seriesKey(job string) string {
	sum := sha256.Sum256([]byte("telemetry/series\x00" + job))
	return hex.EncodeToString(sum[:])
}

// indexKey is the fixed store key of the series index.
func indexKey() string {
	sum := sha256.Sum256([]byte("telemetry/index"))
	return hex.EncodeToString(sum[:])
}

// seriesDoc is the persisted form of one series.
type seriesDoc struct {
	Job        string   `json:"job"`
	Kind       string   `json:"kind,omitempty"`
	LastWindow uint64   `json:"last_window"`
	Evicted    uint64   `json:"evicted,omitempty"`
	Samples    []Sample `json:"samples"`
}

// indexDoc is the persisted series catalog.
type indexDoc struct {
	Jobs []string `json:"jobs"`
}

// loadIndex recovers the persisted series catalog; the series
// themselves load lazily on first touch.
func (h *Hub) loadIndex() error {
	if h.opt.Store == nil {
		return nil
	}
	data, err := h.opt.Store.Get(indexKey())
	if errors.Is(err, store.ErrNotFound) {
		return nil
	}
	if err != nil {
		var ce *store.CorruptError
		if errors.As(err, &ce) {
			return nil // evicted by the store; start a fresh index
		}
		return fmt.Errorf("telemetry: loading index: %w", err)
	}
	var idx indexDoc
	if err := json.Unmarshal(data, &idx); err != nil {
		return fmt.Errorf("telemetry: decoding index: %w", err)
	}
	for _, job := range idx.Jobs {
		if _, ok := h.series[job]; !ok {
			h.series[job] = &series{job: job}
		}
	}
	return nil
}

// loadSeriesLocked reads a series' persisted samples back into the
// ring. A missing or corrupt document leaves the series empty — the
// store may have evicted it under its LRU budget, which is a bounded
// history, not a fault. Caller holds h.mu.
func (h *Hub) loadSeriesLocked(sr *series) {
	sr.loaded = true
	if h.opt.Store == nil {
		return
	}
	data, err := h.opt.Store.Get(seriesKey(sr.job))
	if err != nil {
		return
	}
	var doc seriesDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return
	}
	if doc.Kind != "" {
		sr.kind = doc.Kind
	}
	if doc.LastWindow > sr.lastWindow || !sr.any {
		sr.lastWindow = doc.LastWindow
	}
	sr.any = sr.any || len(doc.Samples) > 0 || doc.LastWindow > 0
	sr.evicted += doc.Evicted
	if len(sr.samples) == 0 {
		sr.samples = doc.Samples
	} else {
		// Samples ingested before the lazy load (possible only if the
		// index was missing): persisted history goes in front.
		sr.samples = append(doc.Samples, sr.samples...)
	}
	for _, s := range sr.samples {
		sr.bytes += int64(s.approxBytes())
	}
	for len(sr.samples) > 1 &&
		(len(sr.samples) > h.opt.MaxSamplesPerJob || sr.bytes > h.opt.MaxBytesPerJob) {
		sr.bytes -= int64(sr.samples[0].approxBytes())
		sr.samples = sr.samples[1:]
		sr.evicted++
	}
}

// flushJob persists one job's series and the index.
func (h *Hub) flushJob(job string) error {
	h.mu.Lock()
	sr, ok := h.series[job]
	if !ok {
		h.mu.Unlock()
		return nil
	}
	doc, jobs := h.snapshotDocLocked(sr)
	h.mu.Unlock()
	return h.persist([]seriesDoc{doc}, jobs)
}

// Flush persists every dirty series and the index. drad calls it after
// the manager drained, sealing the no-gap half of the resume guarantee;
// it is also the shutdown path for any samples below the FlushEvery
// cadence.
func (h *Hub) Flush() error {
	if h == nil || h.opt.Store == nil {
		return nil
	}
	h.mu.Lock()
	var docs []seriesDoc
	var jobs []string
	for _, job := range sortedJobsLocked(h.series) {
		sr := h.series[job]
		if sr.dirty > 0 {
			doc, _ := h.snapshotDocLocked(sr)
			docs = append(docs, doc)
		}
	}
	jobs = sortedJobsLocked(h.series)
	h.mu.Unlock()
	return h.persist(docs, jobs)
}

// snapshotDocLocked captures a series' persisted form and resets its
// dirty counter; it also returns the current index job list. Caller
// holds h.mu.
func (h *Hub) snapshotDocLocked(sr *series) (seriesDoc, []string) {
	sr.dirty = 0
	doc := seriesDoc{
		Job:        sr.job,
		Kind:       sr.kind,
		LastWindow: sr.lastWindow,
		Evicted:    sr.evicted,
		Samples:    append([]Sample(nil), sr.samples...),
	}
	return doc, sortedJobsLocked(h.series)
}

func sortedJobsLocked(m map[string]*series) []string {
	out := make([]string, 0, len(m))
	for job := range m {
		out = append(out, job)
	}
	sort.Strings(out)
	return out
}

// persist writes series documents and the index to the store.
func (h *Hub) persist(docs []seriesDoc, jobs []string) error {
	if h.opt.Store == nil {
		return nil
	}
	var firstErr error
	put := func(key string, v any) {
		data, err := json.Marshal(v)
		if err == nil {
			err = h.opt.Store.Put(key, data)
		}
		if err != nil {
			h.mFlushErr.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("telemetry: persisting: %w", err)
			}
			return
		}
		h.mFlushes.Inc()
	}
	for _, doc := range docs {
		put(seriesKey(doc.Job), doc)
	}
	put(indexKey(), indexDoc{Jobs: jobs})
	return firstErr
}
