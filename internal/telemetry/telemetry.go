// Package telemetry is the streaming observability plane of the drad
// service: running jobs push windowed Samples (estimator state at batch
// boundaries, invariant-wall violations, metric-registry deltas) into a
// Hub, which retains them as bounded per-job ring series, persists them
// through the content-addressed store (atomic writes; a drained server
// resumes its series with no gap or duplicate windows), fans them out
// to live subscribers (the fleet-wide NDJSON tail), and aggregates them
// into fleet-level health (availability, violation rate, throughput).
//
// Windows are the job's own monotone progress coordinate — for the
// Monte-Carlo kinds the replications folded so far — not wall time:
// that is what makes a resumed series mergeable with an uninterrupted
// one bit-for-bit. Ingest enforces the monotonicity: a sample whose
// window is not beyond the series' last is a stale duplicate (a resumed
// job re-reaching an already-recorded boundary) and is dropped, which
// is the no-duplicates half of the resume guarantee; the no-gap half is
// the Hub flushing on drain after the engines checkpointed.
//
// The package follows the repo's nil-object discipline: every method is
// safe on a nil *Hub, so wiring can thread a hub through
// unconditionally and pay a single branch when telemetry is off.
package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

// Sample is one windowed telemetry observation pushed by a running job.
// Window is the job's monotone progress coordinate (replications folded
// for the Monte-Carlo kinds); everything else is state *at* that
// boundary. Estimator fields are deterministic functions of the job
// spec — they byte-compare across drain/resume — while UnixMs and the
// registry maps are wall-clock-dependent observability extras.
type Sample struct {
	// Job and Kind identify the producing job; the Hub stamps them on
	// ingest when the producer left them empty.
	Job  string `json:"job"`
	Kind string `json:"kind,omitempty"`
	// Window is the job-local monotone progress coordinate. Ingest
	// rejects samples whose window does not advance the series.
	Window uint64 `json:"window"`
	// UnixMs is the ingest wall-clock stamp (informational; stamped by
	// the Hub when zero).
	UnixMs int64 `json:"unix_ms,omitempty"`

	// Estimator state at the window boundary (Monte-Carlo kinds).
	Estimate     float64 `json:"estimate,omitempty"`
	Availability float64 `json:"availability,omitempty"`
	RelErr       float64 `json:"rel_err,omitempty"`
	CIHalf       float64 `json:"ci_half,omitempty"`
	ESS          float64 `json:"ess,omitempty"`
	Trials       uint64  `json:"trials,omitempty"`

	// Invariant-wall state: violations raised in this window and the
	// running total.
	Violations      uint64 `json:"violations,omitempty"`
	ViolationsTotal uint64 `json:"violations_total,omitempty"`

	// Registry delta: counter increments since the previous sample and
	// current gauge levels (see metrics.Delta). Wall-clock-dependent;
	// populated by jobs whose progress is not an estimator.
	Counters map[string]float64 `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// approxBytes is the byte-budget cost of one sample: the JSON encoding
// is what the store persists, so the estimate follows it closely enough
// to bound the disk footprint.
func (s Sample) approxBytes() int {
	n := 96 + len(s.Job) + len(s.Kind)
	for k := range s.Counters {
		n += len(k) + 24
	}
	for k := range s.Gauges {
		n += len(k) + 24
	}
	return n
}

// Options tunes a Hub.
type Options struct {
	// Store persists series across restarts; nil keeps them in memory
	// only.
	Store *store.Store
	// MaxSamplesPerJob bounds each job's retained ring; 0 selects 4096.
	MaxSamplesPerJob int
	// MaxBytesPerJob bounds each job's approximate encoded bytes; 0
	// selects 256 KiB. Oldest samples fall off first.
	MaxBytesPerJob int64
	// FlushEvery persists a dirty series after this many ingests; 0
	// selects 16. Flush() always persists everything regardless.
	FlushEvery int
	// Metrics, when non-nil, receives the telemetry_* families.
	Metrics *metrics.Registry
}

const (
	defaultMaxSamples = 4096
	defaultMaxBytes   = 256 << 10
	defaultFlushEvery = 16
)

// series is one job's retained window ring.
type series struct {
	job     string
	kind    string
	samples []Sample
	bytes   int64
	// lastWindow is the newest accepted window; any marks whether the
	// series has ever accepted one (so window 0 dedups correctly too).
	lastWindow uint64
	any        bool
	// evicted counts samples dropped off the front by the ring budget.
	evicted uint64
	// dirty counts ingests since the last persist.
	dirty int
	// loaded marks a series whose persisted samples have been read back
	// (index-known series start unloaded after a restart).
	loaded bool
}

// Subscription is one live tail attached to a Hub. Receive from C;
// Dropped reports samples lost to a full buffer; Close detaches.
type Subscription struct {
	C       <-chan Sample
	ch      chan Sample
	hub     *Hub
	dropped uint64 // guarded by hub.mu
}

// Dropped returns the number of samples this subscriber lost to
// buffer overflow since the last call (the counter resets, so a tail
// can emit one "dropped n" notice per burst).
func (s *Subscription) Dropped() uint64 {
	if s == nil || s.hub == nil {
		return 0
	}
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	n := s.dropped
	s.dropped = 0
	return n
}

// Close detaches the subscription from the hub.
func (s *Subscription) Close() {
	if s == nil || s.hub == nil {
		return
	}
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	for i, sub := range s.hub.subs {
		if sub == s {
			s.hub.subs = append(s.hub.subs[:i], s.hub.subs[i+1:]...)
			break
		}
	}
}

// Hub is the telemetry plane: per-job ring series, store persistence,
// live fanout, fleet aggregation. All methods are safe for concurrent
// use and on a nil receiver.
type Hub struct {
	opt   Options
	start time.Time

	mu     sync.Mutex
	series map[string]*series
	subs   []*Subscription

	ingested uint64 // samples accepted, process lifetime

	mSamples  *metrics.Counter
	mStale    *metrics.Counter
	mEvicted  *metrics.Counter
	mSubDrops *metrics.Counter
	mFlushes  *metrics.Counter
	mFlushErr *metrics.Counter
	mJobs     *metrics.Gauge
	mRetained *metrics.Gauge
}

// New builds a Hub and, when a store is attached, recovers the index of
// previously persisted series (their samples load lazily on first
// touch).
func New(opt Options) (*Hub, error) {
	if opt.MaxSamplesPerJob <= 0 {
		opt.MaxSamplesPerJob = defaultMaxSamples
	}
	if opt.MaxBytesPerJob <= 0 {
		opt.MaxBytesPerJob = defaultMaxBytes
	}
	if opt.FlushEvery <= 0 {
		opt.FlushEvery = defaultFlushEvery
	}
	reg := opt.Metrics
	h := &Hub{
		opt:       opt,
		start:     time.Now(),
		series:    make(map[string]*series),
		mSamples:  reg.Counter("telemetry_samples_total", "Telemetry samples accepted into series."),
		mStale:    reg.Counter("telemetry_stale_samples_total", "Samples dropped because their window did not advance the series (resume duplicates)."),
		mEvicted:  reg.Counter("telemetry_evicted_samples_total", "Samples dropped off a ring by the per-job budget."),
		mSubDrops: reg.Counter("telemetry_subscriber_dropped_total", "Samples lost to full subscriber buffers."),
		mFlushes:  reg.Counter("telemetry_flushes_total", "Series persists to the store."),
		mFlushErr: reg.Counter("telemetry_flush_errors_total", "Series persists that failed."),
		mJobs:     reg.Gauge("telemetry_jobs", "Jobs with a retained telemetry series."),
		mRetained: reg.Gauge("telemetry_retained_samples", "Samples currently retained across all series."),
	}
	if err := h.loadIndex(); err != nil {
		return nil, err
	}
	return h, nil
}

// ErrStale marks a sample whose window did not advance its series: the
// no-duplicate half of the resume guarantee. It is informational —
// resumed producers replay their last checkpoint window by design, so
// callers that merely forward samples ignore it (errors.Is to tell it
// from a real fault).
var ErrStale = errors.New("telemetry: stale sample window")

// Ingest accepts one sample into its job's series, persisting and
// fanning it out. A sample with an empty Job is rejected; one whose
// Window does not advance the series is counted stale and dropped
// with ErrStale.
func (h *Hub) Ingest(s Sample) error {
	if h == nil {
		return nil
	}
	if s.Job == "" {
		return fmt.Errorf("telemetry: sample without a job id")
	}
	if s.UnixMs == 0 {
		s.UnixMs = time.Now().UnixMilli()
	}

	h.mu.Lock()
	sr := h.seriesLocked(s.Job)
	if s.Kind != "" {
		sr.kind = s.Kind
	} else {
		s.Kind = sr.kind
	}
	if sr.any && s.Window <= sr.lastWindow {
		h.mu.Unlock()
		h.mStale.Inc()
		return ErrStale
	}
	sr.lastWindow, sr.any = s.Window, true
	sr.samples = append(sr.samples, s)
	sr.bytes += int64(s.approxBytes())
	for len(sr.samples) > 1 &&
		(len(sr.samples) > h.opt.MaxSamplesPerJob || sr.bytes > h.opt.MaxBytesPerJob) {
		sr.bytes -= int64(sr.samples[0].approxBytes())
		sr.samples = sr.samples[1:]
		sr.evicted++
		h.mEvicted.Inc()
	}
	sr.dirty++
	h.ingested++
	flush := sr.dirty >= h.opt.FlushEvery
	for _, sub := range h.subs {
		select {
		case sub.ch <- s:
		default: // slow tail: drop rather than stall the producer
			sub.dropped++
			h.mSubDrops.Inc()
		}
	}
	h.publishLocked()
	h.mu.Unlock()

	h.mSamples.Inc()
	if flush {
		return h.flushJob(s.Job)
	}
	return nil
}

// seriesLocked returns (creating if absent) the job's series, loading
// persisted samples on first touch. Caller holds h.mu.
func (h *Hub) seriesLocked(job string) *series {
	sr, ok := h.series[job]
	if !ok {
		sr = &series{job: job, loaded: true}
		h.series[job] = sr
	}
	if !sr.loaded {
		h.loadSeriesLocked(sr)
	}
	return sr
}

// publishLocked refreshes the retained-state gauges. Caller holds h.mu.
func (h *Hub) publishLocked() {
	total := 0
	for _, sr := range h.series {
		total += len(sr.samples)
	}
	h.mJobs.Set(float64(len(h.series)))
	h.mRetained.Set(float64(total))
}

// Subscribe attaches a live tail with the given buffer depth (0 selects
// 64). Delivery is best-effort: a full buffer drops samples and counts
// them on the subscription.
func (h *Hub) Subscribe(buf int) *Subscription {
	if h == nil {
		ch := make(chan Sample)
		close(ch)
		return &Subscription{C: ch}
	}
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Sample, buf)
	sub := &Subscription{C: ch, ch: ch, hub: h}
	h.mu.Lock()
	h.subs = append(h.subs, sub)
	h.mu.Unlock()
	return sub
}

// QueryResult is a per-job range-query response.
type QueryResult struct {
	Job  string `json:"job"`
	Kind string `json:"kind,omitempty"`
	// LastWindow is the newest accepted window of the series.
	LastWindow uint64 `json:"last_window"`
	// Evicted counts samples dropped off the ring before this query.
	Evicted uint64   `json:"evicted,omitempty"`
	Samples []Sample `json:"samples"`
}

// ErrNoSeries reports a job with no telemetry series.
var ErrNoSeries = fmt.Errorf("telemetry: no series for job")

// Query returns the job's samples with Window > since, oldest first,
// capped at limit (0 = no cap; the cap applies from the front, so
// repeated queries with since = last seen window paginate the series).
func (h *Hub) Query(job string, since uint64, limit int) (QueryResult, error) {
	if h == nil {
		return QueryResult{}, ErrNoSeries
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sr, ok := h.series[job]
	if !ok {
		return QueryResult{}, ErrNoSeries
	}
	if !sr.loaded {
		h.loadSeriesLocked(sr)
	}
	res := QueryResult{Job: sr.job, Kind: sr.kind, LastWindow: sr.lastWindow, Evicted: sr.evicted}
	i := sort.Search(len(sr.samples), func(i int) bool { return sr.samples[i].Window > since })
	rest := sr.samples[i:]
	if limit > 0 && len(rest) > limit {
		rest = rest[:limit]
	}
	res.Samples = append([]Sample(nil), rest...)
	return res, nil
}

// JobSummary is one job's line in the fleet view.
type JobSummary struct {
	Job        string  `json:"job"`
	Kind       string  `json:"kind,omitempty"`
	Samples    int     `json:"samples"`
	Evicted    uint64  `json:"evicted,omitempty"`
	LastWindow uint64  `json:"last_window"`
	Last       *Sample `json:"last,omitempty"`
}

// FleetSummary is the cross-job aggregate view.
type FleetSummary struct {
	Jobs []JobSummary `json:"jobs"`
	// Ingested counts samples accepted this process lifetime;
	// SamplesPerSec is that count over the hub's uptime.
	Ingested      uint64  `json:"ingested"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// FleetAvailability is the mean of the latest availability across
	// jobs reporting one (estimator kinds).
	FleetAvailability float64 `json:"fleet_availability,omitempty"`
	// Violations and Trials sum the latest running totals across jobs;
	// ViolationRate is their ratio (violations per trial).
	Violations    uint64  `json:"violations"`
	Trials        uint64  `json:"trials"`
	ViolationRate float64 `json:"violation_rate,omitempty"`
	// TrialsPerSec sums each job's trial rate over its two newest
	// samples — the fleet's live simulation throughput.
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
}

// Fleet aggregates every known series (persisted ones are loaded on
// demand) into the cross-job summary.
func (h *Hub) Fleet() FleetSummary {
	if h == nil {
		return FleetSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := FleetSummary{Ingested: h.ingested}
	if up := time.Since(h.start).Seconds(); up > 0 {
		out.SamplesPerSec = float64(h.ingested) / up
	}
	jobs := make([]string, 0, len(h.series))
	for job := range h.series {
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	availSum, availN := 0.0, 0
	for _, job := range jobs {
		sr := h.series[job]
		if !sr.loaded {
			h.loadSeriesLocked(sr)
		}
		js := JobSummary{Job: sr.job, Kind: sr.kind, Samples: len(sr.samples), Evicted: sr.evicted, LastWindow: sr.lastWindow}
		if n := len(sr.samples); n > 0 {
			last := sr.samples[n-1]
			js.Last = &last
			if last.Availability > 0 {
				availSum += last.Availability
				availN++
			}
			out.Violations += last.ViolationsTotal
			out.Trials += last.Trials
			if n > 1 {
				prev := sr.samples[n-2]
				if dt := float64(last.UnixMs-prev.UnixMs) / 1000; dt > 0 && last.Trials > prev.Trials {
					out.TrialsPerSec += float64(last.Trials-prev.Trials) / dt
				}
			}
		}
		out.Jobs = append(out.Jobs, js)
	}
	if availN > 0 {
		out.FleetAvailability = availSum / float64(availN)
	}
	if out.Trials > 0 {
		out.ViolationRate = float64(out.Violations) / float64(out.Trials)
	}
	return out
}

// Jobs returns the IDs of every known series, sorted.
func (h *Hub) Jobs() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.series))
	for job := range h.series {
		out = append(out, job)
	}
	sort.Strings(out)
	return out
}
