package telemetry

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/store"
)

func newTestHub(t *testing.T, opt Options) *Hub {
	t.Helper()
	h, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func push(t *testing.T, h *Hub, job string, window uint64, mut ...func(*Sample)) {
	t.Helper()
	s := Sample{Job: job, Kind: "observatory", Window: window, UnixMs: int64(window) * 10}
	for _, f := range mut {
		f(&s)
	}
	if err := h.Ingest(s); err != nil && !errors.Is(err, ErrStale) {
		t.Fatalf("Ingest(%s, %d): %v", job, window, err)
	}
}

func TestIngestQueryPagination(t *testing.T) {
	h := newTestHub(t, Options{})
	for w := uint64(10); w <= 100; w += 10 {
		push(t, h, "job1", w)
	}
	res, err := h.Query("job1", 0, 0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Samples) != 10 || res.LastWindow != 100 {
		t.Fatalf("got %d samples, last window %d; want 10, 100", len(res.Samples), res.LastWindow)
	}
	// Paginate: since = last seen window, limit 3.
	var got []uint64
	since := uint64(0)
	for {
		res, err := h.Query("job1", since, 3)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if len(res.Samples) == 0 {
			break
		}
		for _, s := range res.Samples {
			got = append(got, s.Window)
		}
		since = res.Samples[len(res.Samples)-1].Window
	}
	if len(got) != 10 {
		t.Fatalf("pagination walked %d samples, want 10: %v", len(got), got)
	}
	for i, w := range got {
		if w != uint64(i+1)*10 {
			t.Fatalf("pagination out of order at %d: %v", i, got)
		}
	}
	if _, err := h.Query("nope", 0, 0); err != ErrNoSeries {
		t.Fatalf("unknown job: got %v, want ErrNoSeries", err)
	}
}

func TestIngestRejectsStaleWindows(t *testing.T) {
	reg := metrics.NewRegistry()
	h := newTestHub(t, Options{Metrics: reg})
	push(t, h, "j", 5)
	push(t, h, "j", 5)  // duplicate
	push(t, h, "j", 3)  // regression
	push(t, h, "j", 10) // advance
	res, _ := h.Query("j", 0, 0)
	if len(res.Samples) != 2 {
		t.Fatalf("retained %d samples, want 2 (stale dropped)", len(res.Samples))
	}
	if v := reg.Counter("telemetry_stale_samples_total", "").Value(); v != 2 {
		t.Fatalf("stale counter = %d, want 2", v)
	}
}

func TestIngestRejectsEmptyJob(t *testing.T) {
	h := newTestHub(t, Options{})
	if err := h.Ingest(Sample{Window: 1}); err == nil {
		t.Fatal("Ingest without job id should error")
	}
}

func TestRingBudgets(t *testing.T) {
	h := newTestHub(t, Options{MaxSamplesPerJob: 4})
	for w := uint64(1); w <= 10; w++ {
		push(t, h, "j", w)
	}
	res, _ := h.Query("j", 0, 0)
	if len(res.Samples) != 4 || res.Samples[0].Window != 7 {
		t.Fatalf("ring kept %d samples starting at %d; want 4 starting at 7",
			len(res.Samples), res.Samples[0].Window)
	}
	if res.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", res.Evicted)
	}

	// Byte budget: each sample costs ~100 bytes, so a 300-byte budget
	// retains only the newest few.
	hb := newTestHub(t, Options{MaxBytesPerJob: 300})
	for w := uint64(1); w <= 50; w++ {
		push(t, hb, "j", w)
	}
	res, _ = hb.Query("j", 0, 0)
	if len(res.Samples) >= 50 || len(res.Samples) == 0 {
		t.Fatalf("byte budget retained %d samples, want a small non-zero tail", len(res.Samples))
	}
	if res.Samples[len(res.Samples)-1].Window != 50 {
		t.Fatal("byte budget must evict oldest first")
	}
}

func TestPersistenceRoundTripAndResumeDedup(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	h := newTestHub(t, Options{Store: st})
	for w := uint64(10); w <= 50; w += 10 {
		push(t, h, "j", w, func(s *Sample) { s.Estimate = float64(w) / 1000 })
	}
	if err := h.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// A fresh hub on a re-opened store sees the series.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	h2 := newTestHub(t, Options{Store: st2})
	res, err := h2.Query("j", 0, 0)
	if err != nil {
		t.Fatalf("Query after restart: %v", err)
	}
	if len(res.Samples) != 5 || res.LastWindow != 50 || res.Kind != "observatory" {
		t.Fatalf("restart lost state: %d samples, last %d, kind %q", len(res.Samples), res.LastWindow, res.Kind)
	}
	if res.Samples[2].Estimate != 0.03 {
		t.Fatalf("sample payload mangled: %+v", res.Samples[2])
	}

	// Resume dedup: re-pushing already-persisted windows is stale; the
	// next new window extends the series without a duplicate.
	push(t, h2, "j", 40)
	push(t, h2, "j", 50)
	push(t, h2, "j", 60)
	res, _ = h2.Query("j", 0, 0)
	if len(res.Samples) != 6 || res.Samples[5].Window != 60 {
		t.Fatalf("resume merge wrong: %d samples, last %d; want 6 ending at 60", len(res.Samples), res.LastWindow)
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].Window <= res.Samples[i-1].Window {
			t.Fatalf("windows not strictly increasing: %+v", res.Samples)
		}
	}
}

func TestFlushEveryPersistsAutomatically(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.Open(dir, store.Options{})
	h := newTestHub(t, Options{Store: st, FlushEvery: 2})
	push(t, h, "j", 1)
	push(t, h, "j", 2) // second ingest crosses the cadence → flush
	st2, _ := store.Open(dir, store.Options{})
	h2 := newTestHub(t, Options{Store: st2})
	res, err := h2.Query("j", 0, 0)
	if err != nil || len(res.Samples) != 2 {
		t.Fatalf("auto-flush missing: err=%v samples=%d", err, len(res.Samples))
	}
}

func TestSubscribeFanoutAndOverflow(t *testing.T) {
	h := newTestHub(t, Options{})
	sub := h.Subscribe(2)
	defer sub.Close()
	for w := uint64(1); w <= 5; w++ {
		push(t, h, "j", w)
	}
	// Buffer of 2: first two delivered, three dropped.
	if s := <-sub.C; s.Window != 1 {
		t.Fatalf("first delivered window %d, want 1", s.Window)
	}
	if s := <-sub.C; s.Window != 2 {
		t.Fatalf("second delivered window %d, want 2", s.Window)
	}
	if d := sub.Dropped(); d != 3 {
		t.Fatalf("Dropped = %d, want 3", d)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("Dropped must reset, got %d", d)
	}
	// After Close, ingest no longer reaches the channel.
	sub.Close()
	push(t, h, "j", 6)
	select {
	case s, ok := <-sub.C:
		if ok {
			t.Fatalf("closed subscription received window %d", s.Window)
		}
	default:
	}
}

func TestFleetAggregates(t *testing.T) {
	h := newTestHub(t, Options{})
	push(t, h, "a", 100, func(s *Sample) {
		s.Availability = 0.999
		s.Trials = 100
		s.ViolationsTotal = 1
		s.UnixMs = 1000
	})
	push(t, h, "a", 200, func(s *Sample) {
		s.Availability = 0.999
		s.Trials = 200
		s.ViolationsTotal = 2
		s.UnixMs = 2000
	})
	push(t, h, "b", 10, func(s *Sample) {
		s.Availability = 0.997
		s.Trials = 50
		s.UnixMs = 1500
	})
	f := h.Fleet()
	if len(f.Jobs) != 2 || f.Ingested != 3 {
		t.Fatalf("fleet sees %d jobs / %d ingested, want 2 / 3", len(f.Jobs), f.Ingested)
	}
	if want := (0.999 + 0.997) / 2; f.FleetAvailability != want {
		t.Fatalf("fleet availability %g, want %g", f.FleetAvailability, want)
	}
	if f.Trials != 250 || f.Violations != 2 {
		t.Fatalf("trials/violations = %d/%d, want 250/2", f.Trials, f.Violations)
	}
	if want := 2.0 / 250; f.ViolationRate != want {
		t.Fatalf("violation rate %g, want %g", f.ViolationRate, want)
	}
	// Job a folded 100 trials over 1s between its two samples.
	if f.TrialsPerSec != 100 {
		t.Fatalf("trials/sec %g, want 100", f.TrialsPerSec)
	}
	if f.SamplesPerSec <= 0 {
		t.Fatalf("samples/sec %g, want > 0", f.SamplesPerSec)
	}
}

func TestNilHubIsSafe(t *testing.T) {
	var h *Hub
	if err := h.Ingest(Sample{Job: "j", Window: 1}); err != nil {
		t.Fatalf("nil Ingest: %v", err)
	}
	if err := h.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if _, err := h.Query("j", 0, 0); err != ErrNoSeries {
		t.Fatalf("nil Query: %v", err)
	}
	if f := h.Fleet(); len(f.Jobs) != 0 {
		t.Fatal("nil Fleet must be empty")
	}
	if jobs := h.Jobs(); jobs != nil {
		t.Fatal("nil Jobs must be nil")
	}
	sub := h.Subscribe(1)
	if _, ok := <-sub.C; ok {
		t.Fatal("nil hub subscription channel must be closed")
	}
	sub.Dropped()
	sub.Close()
}

func TestEvictedSeriesDocLoadsEmpty(t *testing.T) {
	// A store that evicted the series document under its LRU budget must
	// not wedge the hub: the series comes back empty and ingest resumes.
	dir := t.TempDir()
	st, _ := store.Open(dir, store.Options{})
	h := newTestHub(t, Options{Store: st})
	push(t, h, "j", 1)
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Delete(seriesKey("j"))

	st2, _ := store.Open(dir, store.Options{})
	h2 := newTestHub(t, Options{Store: st2})
	res, err := h2.Query("j", 0, 0)
	if err != nil || len(res.Samples) != 0 {
		t.Fatalf("evicted series: err=%v samples=%d, want empty ok", err, len(res.Samples))
	}
	push(t, h2, "j", 2)
	res, _ = h2.Query("j", 0, 0)
	if len(res.Samples) != 1 {
		t.Fatalf("ingest after eviction retained %d, want 1", len(res.Samples))
	}
}
