package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReproducibility(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Reseed did not reset to New-equivalent state")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates too far from %g", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := New(8)
	for _, rate := range []float64{0.5, 1, 2e-5, 10} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Exp(rate)
			if v <= 0 {
				t.Fatalf("Exp(%g) returned non-positive %g", rate, v)
			}
			sum += v
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want)/want > 0.03 {
			t.Fatalf("Exp(%g) mean = %g, want ~%g", rate, mean, want)
		}
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	r := New(9)
	for _, mean := range []float64{0.3, 2, 12, 45, 300} {
		const n = 60000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%g) negative", mean)
			}
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		tol := 4 * math.Sqrt(mean/float64(n)) * math.Max(1, math.Sqrt(mean))
		if math.Abs(m-mean) > math.Max(tol, 0.05*mean) {
			t.Fatalf("Poisson(%g) mean = %g", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.2 {
			t.Fatalf("Poisson(%g) variance = %g, want ~%g", mean, variance, mean)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if v := New(1).Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(10)
	p := 0.25
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Geometric(p)
		if v < 0 {
			t.Fatal("Geometric negative")
		}
		sum += float64(v)
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%g) mean = %g, want ~%g", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	if v := New(2).Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / n
	if math.Abs(f-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %g", f)
	}
}

func TestJumpProducesDisjointStream(t *testing.T) {
	a := New(21)
	b := New(21)
	b.Jump()
	seen := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		seen[a.Uint64()] = true
	}
	overlap := 0
	for i := 0; i < 4096; i++ {
		if seen[b.Uint64()] {
			overlap++
		}
	}
	if overlap > 0 {
		t.Fatalf("jumped stream overlapped original in %d of 4096 outputs", overlap)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(33)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(2e-5)
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(150)
	}
}
