// Package xrand provides a small, fast, reproducible pseudo-random number
// generator for simulation work, together with the variate generators the
// router simulator needs (uniform, exponential, Poisson, geometric).
//
// The generator is xoshiro256++ (Blackman & Vigna). It is implemented here
// rather than taken from math/rand so that simulation results are stable
// across Go releases and so that independent streams can be split
// deterministically with Jump, which advances the state by 2^128 steps.
package xrand

import "math"

// Source is a xoshiro256++ pseudo-random generator. The zero value is not a
// valid generator; construct one with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed using the SplitMix64
// scramble recommended by the xoshiro authors. Any seed, including zero,
// yields a well-mixed non-degenerate state.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the generator state as if it had been freshly created with
// New(seed).
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls of
// Uint64. It is used to carve non-overlapping streams out of one seed: each
// replication of a simulation takes one Jump from a shared ancestor.
func (r *Source) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Split returns a new Source whose stream is guaranteed not to overlap with
// the receiver's next 2^128 outputs. The receiver is advanced past the
// returned stream.
func (r *Source) Split() *Source {
	child := &Source{s: r.s}
	r.Jump()
	return child
}

// Float64 returns a uniformly distributed float64 in [0, 1) with 53 random
// bits of mantissa.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniformly distributed float64 in the open interval
// (0, 1); it never returns 0, making it safe as an argument to math.Log.
func (r *Source) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Exp returns an exponentially distributed variate with the given rate
// (events per unit time). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp called with rate <= 0")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Poisson returns a Poisson-distributed variate with the given mean. For
// small means it uses Knuth's product method; for large means the PTRS
// transformed-rejection method of Hörmann, which is O(1).
func (r *Source) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		return r.poissonKnuth(mean)
	default:
		return r.poissonPTRS(mean)
	}
}

func (r *Source) poissonKnuth(mean float64) int {
	limit := math.Exp(-mean)
	p := 1.0
	k := 0
	for {
		p *= r.Float64Open()
		if p <= limit {
			return k
		}
		k++
	}
}

func (r *Source) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64Open() - 0.5
		v := r.Float64Open()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-lg {
			return int(k)
		}
	}
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) sequence. It panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric called with p outside (0, 1]")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(r.Float64Open()) / math.Log1p(-p)))
}

// Bernoulli reports true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
