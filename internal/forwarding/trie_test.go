package forwarding

import (
	"testing"
	"testing/quick"
)

func ip(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 || Mask(32) != 0xffffffff || Mask(8) != 0xff000000 || Mask(24) != 0xffffff00 {
		t.Fatal("mask values wrong")
	}
}

func TestMakePrefixMasksHostBits(t *testing.T) {
	p := MakePrefix(ip(10, 1, 2, 3), 8)
	if p.Addr != ip(10, 0, 0, 0) {
		t.Fatalf("prefix addr = %08x", p.Addr)
	}
	if p.String() != "10.0.0.0/8" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestMakePrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakePrefix(0, 33)
}

func TestPrefixContains(t *testing.T) {
	p := MakePrefix(ip(192, 168, 0, 0), 16)
	if !p.Contains(ip(192, 168, 4, 200)) || p.Contains(ip(192, 169, 0, 1)) {
		t.Fatal("Contains wrong")
	}
}

func TestTrieLongestPrefixWins(t *testing.T) {
	var tr Trie
	tr.Insert(Route{MakePrefix(ip(10, 0, 0, 0), 8), 1})
	tr.Insert(Route{MakePrefix(ip(10, 1, 0, 0), 16), 2})
	tr.Insert(Route{MakePrefix(ip(10, 1, 2, 0), 24), 3})
	cases := []struct {
		addr uint32
		want int
	}{
		{ip(10, 9, 9, 9), 1},
		{ip(10, 1, 9, 9), 2},
		{ip(10, 1, 2, 9), 3},
	}
	for _, c := range cases {
		r, ok := tr.Lookup(c.addr)
		if !ok || r.NextLC != c.want {
			t.Fatalf("Lookup(%08x) = %+v, %v; want LC %d", c.addr, r, ok, c.want)
		}
	}
	if _, ok := tr.Lookup(ip(11, 0, 0, 1)); ok {
		t.Fatal("lookup outside any prefix succeeded")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie
	tr.Insert(Route{MakePrefix(0, 0), 7})
	r, ok := tr.Lookup(ip(203, 0, 113, 9))
	if !ok || r.NextLC != 7 {
		t.Fatal("default route not matched")
	}
}

func TestTrieReplaceAndRemove(t *testing.T) {
	var tr Trie
	p := MakePrefix(ip(10, 0, 0, 0), 8)
	tr.Insert(Route{p, 1})
	tr.Insert(Route{p, 2}) // replace
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	r, _ := tr.Lookup(ip(10, 1, 1, 1))
	if r.NextLC != 2 {
		t.Fatal("replace did not take effect")
	}
	if !tr.Remove(p) {
		t.Fatal("Remove returned false")
	}
	if tr.Remove(p) {
		t.Fatal("second Remove returned true")
	}
	if _, ok := tr.Lookup(ip(10, 1, 1, 1)); ok {
		t.Fatal("lookup succeeded after removal")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after remove", tr.Len())
	}
}

func TestTrieHostRoute(t *testing.T) {
	var tr Trie
	tr.Insert(Route{MakePrefix(ip(10, 0, 0, 0), 8), 1})
	tr.Insert(Route{MakePrefix(ip(10, 0, 0, 5), 32), 9})
	r, _ := tr.Lookup(ip(10, 0, 0, 5))
	if r.NextLC != 9 {
		t.Fatal("host route not preferred")
	}
	r, _ = tr.Lookup(ip(10, 0, 0, 6))
	if r.NextLC != 1 {
		t.Fatal("host route leaked to neighbour")
	}
}

func TestTrieRoutesSorted(t *testing.T) {
	var tr Trie
	tr.Insert(Route{MakePrefix(ip(10, 1, 0, 0), 16), 2})
	tr.Insert(Route{MakePrefix(ip(9, 0, 0, 0), 8), 1})
	tr.Insert(Route{MakePrefix(ip(10, 0, 0, 0), 8), 3})
	rs := tr.Routes()
	if len(rs) != 3 {
		t.Fatalf("Routes len = %d", len(rs))
	}
	if rs[0].Prefix.Len != 8 || rs[0].Prefix.Addr != ip(9, 0, 0, 0) || rs[2].Prefix.Len != 16 {
		t.Fatalf("Routes order wrong: %v", rs)
	}
}

// linearLookup is the obviously correct LPM reference implementation.
func linearLookup(routes []Route, addr uint32) (Route, bool) {
	best := Route{Prefix: Prefix{Len: -1}}
	found := false
	for _, r := range routes {
		if r.Prefix.Contains(addr) && r.Prefix.Len > best.Prefix.Len {
			best = r
			found = true
		}
	}
	return best, found
}

// Property: the trie agrees with the linear-scan reference on random route
// sets and random lookups.
func TestTrieMatchesLinearScanProperty(t *testing.T) {
	f := func(seedRoutes []uint32, addrs []uint32) bool {
		var tr Trie
		var routes []Route
		for i, s := range seedRoutes {
			length := int(s % 33)
			p := MakePrefix(s, length)
			r := Route{p, i}
			// Mirror trie replace semantics in the reference list.
			replaced := false
			for j := range routes {
				if routes[j].Prefix == p {
					routes[j] = r
					replaced = true
					break
				}
			}
			if !replaced {
				routes = append(routes, r)
			}
			tr.Insert(r)
		}
		if tr.Len() != len(routes) {
			return false
		}
		for _, a := range addrs {
			got, gok := tr.Lookup(a)
			want, wok := linearLookup(routes, a)
			if gok != wok {
				return false
			}
			if gok && (got.NextLC != want.NextLC || got.Prefix != want.Prefix) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteProcessorDistribution(t *testing.T) {
	rp := NewRouteProcessor()
	rp.Announce(Route{MakePrefix(ip(10, 0, 0, 0), 8), 1})

	var got []*Table
	rp.Subscribe(func(tb *Table) { got = append(got, tb) })
	if len(got) != 1 {
		t.Fatal("Subscribe did not deliver the initial snapshot")
	}
	if lc, ok := got[0].Lookup(ip(10, 2, 3, 4)); !ok || lc != 1 {
		t.Fatal("initial snapshot missing route")
	}

	rp.Announce(Route{MakePrefix(ip(11, 0, 0, 0), 8), 2})
	v := rp.Distribute()
	if len(got) != 2 {
		t.Fatal("Distribute did not notify subscriber")
	}
	if got[1].Version() != v || v <= got[0].Version() {
		t.Fatalf("versions: first=%d second=%d returned=%d", got[0].Version(), got[1].Version(), v)
	}
	if lc, ok := got[1].Lookup(ip(11, 1, 1, 1)); !ok || lc != 2 {
		t.Fatal("second snapshot missing new route")
	}
	// Old snapshot is immutable: still lacks the new route.
	if _, ok := got[0].Lookup(ip(11, 1, 1, 1)); ok {
		t.Fatal("old snapshot mutated")
	}
}

func TestRouteProcessorWithdraw(t *testing.T) {
	rp := NewRouteProcessor()
	p := MakePrefix(ip(10, 0, 0, 0), 8)
	rp.Announce(Route{p, 1})
	if !rp.Withdraw(p) {
		t.Fatal("Withdraw returned false")
	}
	var tb *Table
	rp.Subscribe(func(s *Table) { tb = s })
	if _, ok := tb.Lookup(ip(10, 0, 0, 1)); ok {
		t.Fatal("withdrawn route still present")
	}
	if tb.Len() != 0 {
		t.Fatalf("table len = %d", tb.Len())
	}
}

func TestMustLookupPanicsOnMiss(t *testing.T) {
	rp := NewRouteProcessor()
	var tb *Table
	rp.Subscribe(func(s *Table) { tb = s })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.MustLookup(1)
}

func BenchmarkTrieLookup(b *testing.B) {
	var tr Trie
	rng := uint32(12345)
	for i := 0; i < 10000; i++ {
		rng = rng*1664525 + 1013904223
		tr.Insert(Route{MakePrefix(rng, 8+int(rng%25)), int(rng % 16)})
	}
	b.ResetTimer()
	a := uint32(0)
	for i := 0; i < b.N; i++ {
		a = a*1664525 + 1013904223
		tr.Lookup(a)
	}
}
