// Package forwarding implements the router's L3 lookup path: IPv4 prefixes,
// a longest-prefix-match binary trie, immutable routing-table snapshots,
// and the route processor (RP) that distributes table copies to the local
// forwarding engines (LFEs) on each linecard, as in the paper's Figure 1.
package forwarding

import (
	"fmt"
	"sort"
)

// Prefix is an IPv4 route prefix.
type Prefix struct {
	Addr uint32 // host-order address; bits past Len are ignored
	Len  int    // 0..32
}

// MakePrefix masks addr down to length bits and returns the prefix. It
// panics for lengths outside [0, 32].
func MakePrefix(addr uint32, length int) Prefix {
	if length < 0 || length > 32 {
		panic(fmt.Sprintf("forwarding: invalid prefix length %d", length))
	}
	return Prefix{Addr: addr & Mask(length), Len: length}
}

// Mask returns the network mask for a prefix length.
func Mask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(length))
}

// Contains reports whether the address falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&Mask(p.Len) == p.Addr
}

// String renders the prefix in dotted-quad/len form.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d", byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Len)
}

// Route binds a prefix to a next hop, which in this router model is the
// egress linecard index.
type Route struct {
	Prefix Prefix
	NextLC int
}

// trieNode is one node of the binary LPM trie.
type trieNode struct {
	child [2]*trieNode
	// route is non-nil if a prefix terminates here.
	route *Route
}

// Trie is a binary longest-prefix-match trie. The zero value is an empty
// trie ready for use. Trie is not safe for concurrent mutation; the router
// model distributes immutable snapshots instead (see Table).
type Trie struct {
	root trieNode
	n    int
}

// Len returns the number of routes stored.
func (t *Trie) Len() int { return t.n }

// Insert adds or replaces the route for the given prefix.
func (t *Trie) Insert(r Route) {
	node := &t.root
	for depth := 0; depth < r.Prefix.Len; depth++ {
		bit := (r.Prefix.Addr >> (31 - uint(depth))) & 1
		if node.child[bit] == nil {
			node.child[bit] = &trieNode{}
		}
		node = node.child[bit]
	}
	if node.route == nil {
		t.n++
	}
	rc := r
	rc.Prefix = MakePrefix(r.Prefix.Addr, r.Prefix.Len)
	node.route = &rc
}

// Remove deletes the route for the exact prefix, reporting whether it
// existed. Interior nodes are left in place; the trie is rebuilt on RP
// redistribution, so slow leak-free deletion is unnecessary here.
func (t *Trie) Remove(p Prefix) bool {
	node := &t.root
	for depth := 0; depth < p.Len; depth++ {
		bit := (p.Addr >> (31 - uint(depth))) & 1
		if node.child[bit] == nil {
			return false
		}
		node = node.child[bit]
	}
	if node.route == nil {
		return false
	}
	node.route = nil
	t.n--
	return true
}

// Lookup returns the longest-prefix-match route for addr.
func (t *Trie) Lookup(addr uint32) (Route, bool) {
	var best *Route
	node := &t.root
	if node.route != nil {
		best = node.route
	}
	for depth := 0; depth < 32 && node != nil; depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		node = node.child[bit]
		if node != nil && node.route != nil {
			best = node.route
		}
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// Routes returns all stored routes sorted by (prefix length, address) —
// deterministic for tests and table dumps.
func (t *Trie) Routes() []Route {
	var out []Route
	var walk func(n *trieNode)
	walk = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.route != nil {
			out = append(out, *n.route)
		}
		walk(n.child[0])
		walk(n.child[1])
	}
	walk(&t.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Len != out[j].Prefix.Len {
			return out[i].Prefix.Len < out[j].Prefix.Len
		}
		return out[i].Prefix.Addr < out[j].Prefix.Addr
	})
	return out
}
