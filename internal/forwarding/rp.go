package forwarding

import "fmt"

// Table is an immutable routing-table snapshot as held by a linecard's
// LFE. Lookups are safe for concurrent use because the table never
// changes; the RP replaces whole snapshots.
type Table struct {
	version uint64
	trie    *Trie
}

// Version returns the RP-assigned version of the snapshot.
func (t *Table) Version() uint64 { return t.version }

// Len returns the number of routes.
func (t *Table) Len() int { return t.trie.Len() }

// Lookup performs the longest-prefix-match lookup and returns the egress
// linecard index.
func (t *Table) Lookup(addr uint32) (int, bool) {
	r, ok := t.trie.Lookup(addr)
	if !ok {
		return 0, false
	}
	return r.NextLC, true
}

// RouteProcessor is the central control element of the router (the RP of
// the paper's Figure 1): it owns the master routing table and distributes
// versioned snapshots to the LFEs over the internal bus. The paper's fault
// model treats the RP as outside the routing path (always redundant), so
// the RP here never fails.
type RouteProcessor struct {
	master  Trie
	version uint64
	subs    []func(*Table)
}

// NewRouteProcessor returns an RP with an empty master table.
func NewRouteProcessor() *RouteProcessor { return &RouteProcessor{} }

// Announce adds or replaces a route in the master table. Distribution to
// subscribers happens on Distribute, mirroring the batched route-update
// dissemination of real RPs.
func (rp *RouteProcessor) Announce(r Route) { rp.master.Insert(r) }

// Withdraw removes a route, reporting whether it existed.
func (rp *RouteProcessor) Withdraw(p Prefix) bool { return rp.master.Remove(p) }

// Subscribe registers an LFE callback invoked with every distributed
// snapshot, and immediately delivers the current table so late joiners are
// not left empty.
func (rp *RouteProcessor) Subscribe(fn func(*Table)) {
	rp.subs = append(rp.subs, fn)
	fn(rp.snapshot())
}

// Distribute builds a new snapshot from the master table and pushes it to
// every subscriber, returning the snapshot version.
func (rp *RouteProcessor) Distribute() uint64 {
	t := rp.snapshot()
	for _, fn := range rp.subs {
		fn(t)
	}
	return t.version
}

func (rp *RouteProcessor) snapshot() *Table {
	rp.version++
	clone := &Trie{}
	for _, r := range rp.master.Routes() {
		clone.Insert(r)
	}
	return &Table{version: rp.version, trie: clone}
}

// MustLookup is a test helper that panics when the address has no route.
func (t *Table) MustLookup(addr uint32) int {
	lc, ok := t.Lookup(addr)
	if !ok {
		panic(fmt.Sprintf("forwarding: no route for %08x", addr))
	}
	return lc
}
