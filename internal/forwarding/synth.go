package forwarding

import "repro/internal/xrand"

// SynthTable generates a synthetic routing table whose prefix-length
// distribution resembles a backbone BGP table: dominated by /24s with a
// spine of /16s and /8s and sprinkles of other lengths. The paper's
// LFE handles "IP lookup" generically; this generator gives the LPM
// benchmarks and the capacity examples a realistic key distribution
// rather than uniform noise.
//
// The returned routes spread next hops uniformly over nextLCs.
func SynthTable(rng *xrand.Source, n, nextLCs int) []Route {
	if n <= 0 || nextLCs <= 0 {
		panic("forwarding: SynthTable needs positive sizes")
	}
	// Approximate backbone prefix-length mix (fractions sum to 1).
	type bucket struct {
		length int
		weight float64
	}
	mix := []bucket{
		{8, 0.01}, {12, 0.01}, {14, 0.01}, {16, 0.12}, {18, 0.04},
		{19, 0.06}, {20, 0.07}, {21, 0.07}, {22, 0.10}, {23, 0.09},
		{24, 0.40}, {28, 0.01}, {32, 0.01},
	}
	cum := make([]float64, len(mix))
	s := 0.0
	for i, b := range mix {
		s += b.weight
		cum[i] = s
	}
	out := make([]Route, 0, n)
	seen := make(map[Prefix]bool, n)
	for len(out) < n {
		u := rng.Float64() * s
		length := mix[len(mix)-1].length
		for i, c := range cum {
			if u <= c {
				length = mix[i].length
				break
			}
		}
		p := MakePrefix(uint32(rng.Uint64()), length)
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, Route{Prefix: p, NextLC: rng.Intn(nextLCs)})
	}
	return out
}

// MatchingAddr returns an address covered by the given route, with random
// host bits — for driving lookups that are guaranteed to hit.
func MatchingAddr(rng *xrand.Source, r Route) uint32 {
	host := uint32(rng.Uint64()) &^ Mask(r.Prefix.Len)
	return r.Prefix.Addr | host
}
