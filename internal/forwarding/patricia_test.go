package forwarding

import (
	"testing"
	"testing/quick"
)

func TestPatriciaBasicLPM(t *testing.T) {
	var tr Patricia
	tr.Insert(Route{MakePrefix(ip(10, 0, 0, 0), 8), 1})
	tr.Insert(Route{MakePrefix(ip(10, 1, 0, 0), 16), 2})
	tr.Insert(Route{MakePrefix(ip(10, 1, 2, 0), 24), 3})
	cases := []struct {
		addr uint32
		want int
	}{
		{ip(10, 9, 9, 9), 1},
		{ip(10, 1, 9, 9), 2},
		{ip(10, 1, 2, 9), 3},
	}
	for _, c := range cases {
		r, ok := tr.Lookup(c.addr)
		if !ok || r.NextLC != c.want {
			t.Fatalf("Lookup(%08x) = %+v, %v", c.addr, r, ok)
		}
	}
	if _, ok := tr.Lookup(ip(11, 0, 0, 1)); ok {
		t.Fatal("miss matched")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestPatriciaDefaultRouteAndHostRoute(t *testing.T) {
	var tr Patricia
	tr.Insert(Route{MakePrefix(0, 0), 9})
	tr.Insert(Route{MakePrefix(ip(10, 0, 0, 5), 32), 5})
	if r, ok := tr.Lookup(ip(200, 1, 1, 1)); !ok || r.NextLC != 9 {
		t.Fatal("default route")
	}
	if r, ok := tr.Lookup(ip(10, 0, 0, 5)); !ok || r.NextLC != 5 {
		t.Fatal("host route")
	}
}

func TestPatriciaSplitAndAncestorInsert(t *testing.T) {
	var tr Patricia
	// Insert a deep prefix first, then its ancestor, then a sibling that
	// forces a split.
	tr.Insert(Route{MakePrefix(ip(10, 1, 2, 0), 24), 1})
	tr.Insert(Route{MakePrefix(ip(10, 0, 0, 0), 8), 2})  // ancestor
	tr.Insert(Route{MakePrefix(ip(10, 2, 0, 0), 16), 3}) // sibling → split
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	checks := []struct {
		addr uint32
		want int
	}{
		{ip(10, 1, 2, 7), 1},
		{ip(10, 7, 7, 7), 2},
		{ip(10, 2, 9, 9), 3},
	}
	for _, c := range checks {
		if r, ok := tr.Lookup(c.addr); !ok || r.NextLC != c.want {
			t.Fatalf("Lookup(%08x) = %+v, %v; want %d", c.addr, r, ok, c.want)
		}
	}
}

func TestPatriciaReplaceAndRemove(t *testing.T) {
	var tr Patricia
	p := MakePrefix(ip(10, 0, 0, 0), 8)
	tr.Insert(Route{p, 1})
	tr.Insert(Route{p, 2})
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	if r, _ := tr.Lookup(ip(10, 1, 1, 1)); r.NextLC != 2 {
		t.Fatal("replace ineffective")
	}
	if !tr.Remove(p) || tr.Remove(p) {
		t.Fatal("remove semantics")
	}
	if _, ok := tr.Lookup(ip(10, 1, 1, 1)); ok {
		t.Fatal("lookup after removal")
	}
	if tr.Remove(MakePrefix(ip(99, 0, 0, 0), 8)) {
		t.Fatal("removed a missing prefix")
	}
}

func TestPatriciaRoutesSorted(t *testing.T) {
	var tr Patricia
	tr.Insert(Route{MakePrefix(ip(10, 1, 0, 0), 16), 2})
	tr.Insert(Route{MakePrefix(ip(9, 0, 0, 0), 8), 1})
	tr.Insert(Route{MakePrefix(ip(10, 0, 0, 0), 8), 3})
	rs := tr.Routes()
	if len(rs) != 3 || rs[0].Prefix.Addr != ip(9, 0, 0, 0) || rs[2].Prefix.Len != 16 {
		t.Fatalf("Routes = %v", rs)
	}
}

// Property: Patricia and the plain Trie agree on arbitrary route sets and
// lookups (and therefore both agree with the linear-scan reference, which
// Trie is already tested against).
func TestPatriciaMatchesTrieProperty(t *testing.T) {
	f := func(seedRoutes []uint32, addrs []uint32) bool {
		var pat Patricia
		var tri Trie
		for i, s := range seedRoutes {
			r := Route{MakePrefix(s, int(s%33)), i}
			pat.Insert(r)
			tri.Insert(r)
		}
		if pat.Len() != tri.Len() {
			return false
		}
		for _, a := range addrs {
			pr, pok := pat.Lookup(a)
			tr, tok := tri.Lookup(a)
			if pok != tok {
				return false
			}
			if pok && (pr.Prefix != tr.Prefix || pr.NextLC != tr.NextLC) {
				return false
			}
		}
		// Route dumps agree too.
		ps, ts := pat.Routes(), tri.Routes()
		if len(ps) != len(ts) {
			return false
		}
		for i := range ps {
			if ps[i] != ts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: removal keeps the two implementations in lockstep.
func TestPatriciaRemoveMatchesTrieProperty(t *testing.T) {
	f := func(seedRoutes []uint32, removals []uint32, addrs []uint32) bool {
		var pat Patricia
		var tri Trie
		for i, s := range seedRoutes {
			r := Route{MakePrefix(s, int(s%33)), i}
			pat.Insert(r)
			tri.Insert(r)
		}
		for _, s := range removals {
			p := MakePrefix(s, int(s%33))
			if pat.Remove(p) != tri.Remove(p) {
				return false
			}
		}
		if pat.Len() != tri.Len() {
			return false
		}
		for _, a := range addrs {
			pr, pok := pat.Lookup(a)
			tr, tok := tri.Lookup(a)
			if pok != tok || (pok && pr != tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPatriciaLookup(b *testing.B) {
	var tr Patricia
	rng := uint32(12345)
	for i := 0; i < 10000; i++ {
		rng = rng*1664525 + 1013904223
		tr.Insert(Route{MakePrefix(rng, 8+int(rng%25)), int(rng % 16)})
	}
	b.ResetTimer()
	a := uint32(0)
	for i := 0; i < b.N; i++ {
		a = a*1664525 + 1013904223
		tr.Lookup(a)
	}
}
