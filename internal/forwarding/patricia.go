package forwarding

// Patricia is a path-compressed binary trie (PATRICIA) for longest-prefix
// match. Compared to the plain Trie it stores one node per branching
// point instead of one per bit, which cuts memory sharply on sparse
// real-world tables (a BGP-mix /24-heavy table needs ~25 nodes per route
// in the bitwise trie but ~2 here); lookups trade that for a masked key
// comparison per node, and the BGP-mix benchmarks show the bitwise trie
// is still faster to search on this table size. Both implementations are
// property-tested for equivalence against each other and (via Trie's
// tests) a linear scan.
type Patricia struct {
	root *patNode
	n    int
}

// patNode covers the prefix bits [0, depth) of its key; route is non-nil
// when an exact prefix of length depth terminates here.
type patNode struct {
	key   uint32 // masked to depth bits
	depth int
	route *Route
	child [2]*patNode
}

// Len returns the number of routes stored.
func (t *Patricia) Len() int { return t.n }

// bitAt returns bit i (0 = most significant) of key.
func bitAt(key uint32, i int) uint32 { return (key >> (31 - uint(i))) & 1 }

// commonPrefixLen returns the length of the common prefix of a and b,
// capped at max.
func commonPrefixLen(a, b uint32, max int) int {
	x := a ^ b
	if x == 0 {
		return max
	}
	n := 0
	for n < max && (x>>(31-uint(n)))&1 == 0 {
		n++
	}
	return n
}

// Insert adds or replaces the route for the given prefix.
func (t *Patricia) Insert(r Route) {
	pfx := MakePrefix(r.Prefix.Addr, r.Prefix.Len)
	rc := r
	rc.Prefix = pfx
	nn := &patNode{key: pfx.Addr, depth: pfx.Len, route: &rc}

	if t.root == nil {
		t.root = nn
		t.n++
		return
	}
	t.insert(&t.root, nn)
}

func (t *Patricia) insert(slot **patNode, nn *patNode) {
	cur := *slot
	if cur == nil {
		*slot = nn
		t.n++
		return
	}
	minDepth := cur.depth
	if nn.depth < minDepth {
		minDepth = nn.depth
	}
	cpl := commonPrefixLen(cur.key, nn.key, minDepth)
	switch {
	case cpl == cur.depth && cpl == nn.depth:
		// Same prefix: replace or set the route.
		if cur.route == nil {
			t.n++
		}
		cur.route = nn.route
	case cpl == cur.depth:
		// nn extends below cur.
		b := bitAt(nn.key, cur.depth)
		t.insert(&cur.child[b], nn)
	case cpl == nn.depth:
		// nn is an ancestor of cur: nn takes cur as a child.
		b := bitAt(cur.key, nn.depth)
		nn.child[b] = cur
		*slot = nn
		t.n++
	default:
		// Split: a new internal node at depth cpl.
		mid := &patNode{key: cur.key & Mask(cpl), depth: cpl}
		mid.child[bitAt(cur.key, cpl)] = cur
		mid.child[bitAt(nn.key, cpl)] = nn
		*slot = mid
		t.n++
	}
}

// Lookup returns the longest-prefix-match route for addr.
func (t *Patricia) Lookup(addr uint32) (Route, bool) {
	var best *Route
	node := t.root
	for node != nil {
		// The node matches only if addr agrees with its whole key.
		if addr&Mask(node.depth) != node.key {
			break
		}
		if node.route != nil {
			best = node.route
		}
		if node.depth >= 32 {
			break
		}
		node = node.child[bitAt(addr, node.depth)]
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// Remove deletes the route for the exact prefix, reporting whether it
// existed. Structural nodes are retained (consistent with Trie.Remove;
// tables are rebuilt on redistribution).
func (t *Patricia) Remove(p Prefix) bool {
	pfx := MakePrefix(p.Addr, p.Len)
	node := t.root
	for node != nil {
		if pfx.Addr&Mask(node.depth) != node.key {
			return false
		}
		if node.depth == pfx.Len {
			if node.key != pfx.Addr || node.route == nil {
				return false
			}
			node.route = nil
			t.n--
			return true
		}
		if node.depth > pfx.Len || node.depth >= 32 {
			return false
		}
		node = node.child[bitAt(pfx.Addr, node.depth)]
	}
	return false
}

// Routes returns all stored routes in (length, address) order.
func (t *Patricia) Routes() []Route {
	var out []Route
	var walk func(n *patNode)
	walk = func(n *patNode) {
		if n == nil {
			return
		}
		if n.route != nil {
			out = append(out, *n.route)
		}
		walk(n.child[0])
		walk(n.child[1])
	}
	walk(t.root)
	sortRoutes(out)
	return out
}

func sortRoutes(rs []Route) {
	// Insertion sort: route dumps are small and this keeps the file
	// dependency-free.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j-1], rs[j]
			if a.Prefix.Len < b.Prefix.Len || (a.Prefix.Len == b.Prefix.Len && a.Prefix.Addr <= b.Prefix.Addr) {
				break
			}
			rs[j-1], rs[j] = b, a
		}
	}
}
