package forwarding

import (
	"testing"

	"repro/internal/xrand"
)

func TestSynthTableShape(t *testing.T) {
	rng := xrand.New(3)
	routes := SynthTable(rng, 20000, 8)
	if len(routes) != 20000 {
		t.Fatalf("len = %d", len(routes))
	}
	counts := map[int]int{}
	seen := map[Prefix]bool{}
	for _, r := range routes {
		if seen[r.Prefix] {
			t.Fatalf("duplicate prefix %v", r.Prefix)
		}
		seen[r.Prefix] = true
		counts[r.Prefix.Len]++
		if r.NextLC < 0 || r.NextLC >= 8 {
			t.Fatalf("next hop %d out of range", r.NextLC)
		}
		if r.Prefix.Addr&^Mask(r.Prefix.Len) != 0 {
			t.Fatal("host bits set in prefix")
		}
	}
	// /24 dominates (≈40%).
	if f := float64(counts[24]) / 20000; f < 0.3 || f > 0.5 {
		t.Fatalf("/24 fraction = %g", f)
	}
	// /16 spine present.
	if counts[16] == 0 || counts[8] == 0 {
		t.Fatal("missing spine lengths")
	}
}

func TestSynthTableLookupsResolve(t *testing.T) {
	rng := xrand.New(4)
	routes := SynthTable(rng, 5000, 4)
	var tr Trie
	var pat Patricia
	for _, r := range routes {
		tr.Insert(r)
		pat.Insert(r)
	}
	for i := 0; i < 5000; i++ {
		r := routes[rng.Intn(len(routes))]
		addr := MatchingAddr(rng, r)
		got, ok := tr.Lookup(addr)
		if !ok {
			t.Fatalf("trie missed address %08x in %v", addr, r.Prefix)
		}
		// LPM may pick a longer prefix than r, but never a shorter one.
		if got.Prefix.Len < r.Prefix.Len {
			t.Fatalf("lookup of %08x returned shorter prefix %v than generator's %v",
				addr, got.Prefix, r.Prefix)
		}
		pGot, pOk := pat.Lookup(addr)
		if !pOk || pGot != got {
			t.Fatalf("patricia disagrees on %08x: %v vs %v", addr, pGot, got)
		}
	}
}

func TestSynthTableValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SynthTable(xrand.New(1), 0, 1)
}

func BenchmarkTrieLookupBGPMix(b *testing.B) {
	rng := xrand.New(5)
	routes := SynthTable(rng, 100000, 16)
	var tr Trie
	for _, r := range routes {
		tr.Insert(r)
	}
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = MatchingAddr(rng, routes[rng.Intn(len(routes))])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkPatriciaLookupBGPMix(b *testing.B) {
	rng := xrand.New(5)
	routes := SynthTable(rng, 100000, 16)
	var tr Patricia
	for _, r := range routes {
		tr.Insert(r)
	}
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = MatchingAddr(rng, routes[rng.Intn(len(routes))])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}
