package fabric

import (
	"fmt"

	"repro/internal/packet"
)

// Banyan models the other fabric family the paper names ("crossbar or a
// multistage interconnect"): a self-routing butterfly of 2×2 switching
// elements, log2(n) stages of n/2 elements. Cells route themselves by the
// destination's bits, one bit per stage; two cells wanting the same
// internal output link in the same slot collide, and one of them is
// blocked — the internal blocking that distinguishes multistage fabrics
// from crossbars and motivates the redundancy the paper assumes.
type Banyan struct {
	n      int // ports, power of two
	stages int
	// failed[s][e] marks element e of stage s failed: cells needing it
	// are blocked.
	failed [][]bool

	Offered   uint64
	Delivered uint64
	Blocked   uint64
}

// NewBanyan builds an n-port network; n must be a power of two ≥ 2.
func NewBanyan(n int) (*Banyan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fabric: banyan needs a power-of-two port count, got %d", n)
	}
	stages := 0
	for 1<<stages < n {
		stages++
	}
	f := make([][]bool, stages)
	for s := range f {
		f[s] = make([]bool, n/2)
	}
	return &Banyan{n: n, stages: stages, failed: f}, nil
}

// Ports returns n.
func (b *Banyan) Ports() int { return b.n }

// Stages returns log2(n).
func (b *Banyan) Stages() int { return b.stages }

// FailElement marks one 2×2 switching element failed.
func (b *Banyan) FailElement(stage, elem int) {
	b.checkElem(stage, elem)
	b.failed[stage][elem] = true
}

// RepairElement restores one element.
func (b *Banyan) RepairElement(stage, elem int) {
	b.checkElem(stage, elem)
	b.failed[stage][elem] = false
}

func (b *Banyan) checkElem(stage, elem int) {
	if stage < 0 || stage >= b.stages || elem < 0 || elem >= b.n/2 {
		panic(fmt.Sprintf("fabric: element (%d, %d) outside %d-stage banyan", stage, elem, b.stages))
	}
}

// Routing follows the omega (shuffle-exchange) wiring: before each stage
// the rows are perfectly shuffled (rotate-left of the row index), so the
// element a cell occupies at stage s is row mod n/2, and the cell exits
// on the output selected by destination bit (stages−1−s). The classic
// admissibility results follow: identity and circular shifts pass
// conflict-free; bit-reversal-like permutations block.

// SendBatch attempts to deliver one cell per distinct source in a single
// slot. It returns the delivered cells; the rest were blocked, either by
// internal link contention or by failed elements. Cells must have
// distinct SrcLC values (one injection port each).
func (b *Banyan) SendBatch(cells []packet.Cell) []packet.Cell {
	type claim struct{ stage, elem, out int }
	used := make(map[claim]bool)
	seenSrc := make(map[int]bool)
	var ok []packet.Cell
	for _, c := range cells {
		if c.SrcLC < 0 || c.SrcLC >= b.n || c.DstLC < 0 || c.DstLC >= b.n {
			panic(fmt.Sprintf("fabric: cell %d->%d outside banyan", c.SrcLC, c.DstLC))
		}
		if seenSrc[c.SrcLC] {
			panic(fmt.Sprintf("fabric: two cells injected at port %d in one slot", c.SrcLC))
		}
		seenSrc[c.SrcLC] = true
		b.Offered++
		row := c.SrcLC
		blocked := false
		var claims []claim
		for s := 0; s < b.stages; s++ {
			bit := (c.DstLC >> (b.stages - 1 - s)) & 1
			elem := row & (b.n/2 - 1) // pair index after the shuffle
			if b.failed[s][elem] {
				blocked = true
				break
			}
			cl := claim{s, elem, bit}
			if used[cl] {
				blocked = true
				break
			}
			claims = append(claims, cl)
			row = ((row << 1) | bit) & (b.n - 1)
		}
		if blocked {
			b.Blocked++
			continue
		}
		for _, cl := range claims {
			used[cl] = true
		}
		b.Delivered++
		ok = append(ok, c)
	}
	return ok
}
