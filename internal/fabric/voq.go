package fabric

import (
	"fmt"

	"repro/internal/packet"
)

// This file models the cell-switching discipline inside the crossbar at
// slot granularity. The paper's routers use crossbar (or multistage)
// fabrics fed by the SRUs; the two classic designs are contrasted here:
//
//   - VOQSwitch: virtual output queues with a single-iteration
//     round-robin matching (iSLIP-style) — the design shipping routers
//     use, achieving ~100% throughput under uniform traffic;
//   - FIFOSwitch: one FIFO per input, which suffers head-of-line
//     blocking and saturates near the classic 58.6% bound.
//
// Tests verify both behaviours; a benchmark compares them. The fluid
// Fabric model above remains what the dependability analyses use — these
// switches exist to make the "cells over the fabric" part of the
// architecture executable and measurable.

// VOQSwitch is a slot-synchronous input-queued crossbar with one virtual
// output queue per (input, output) pair.
type VOQSwitch struct {
	n         int
	voq       [][][]packet.Cell // voq[in][out] is a FIFO slice
	grantPtr  []int             // per-output round-robin grant pointer
	acceptPtr []int             // per-input round-robin accept pointer

	Enqueued  uint64
	Delivered uint64
	Slots     uint64
}

// NewVOQSwitch builds an n×n switch.
func NewVOQSwitch(n int) *VOQSwitch {
	if n <= 0 {
		panic("fabric: switch needs at least one port")
	}
	s := &VOQSwitch{
		n:         n,
		voq:       make([][][]packet.Cell, n),
		grantPtr:  make([]int, n),
		acceptPtr: make([]int, n),
	}
	for i := range s.voq {
		s.voq[i] = make([][]packet.Cell, n)
	}
	return s
}

// Ports returns n.
func (s *VOQSwitch) Ports() int { return s.n }

// Enqueue accepts a cell into its input's VOQ.
func (s *VOQSwitch) Enqueue(c packet.Cell) error {
	if c.SrcLC < 0 || c.SrcLC >= s.n || c.DstLC < 0 || c.DstLC >= s.n {
		return fmt.Errorf("fabric: cell %d->%d outside %d-port switch", c.SrcLC, c.DstLC, s.n)
	}
	s.voq[c.SrcLC][c.DstLC] = append(s.voq[c.SrcLC][c.DstLC], c)
	s.Enqueued++
	return nil
}

// QueueLen returns the occupancy of voq[in][out].
func (s *VOQSwitch) QueueLen(in, out int) int { return len(s.voq[in][out]) }

// Backlog returns the total queued cells.
func (s *VOQSwitch) Backlog() int {
	total := 0
	for i := range s.voq {
		for j := range s.voq[i] {
			total += len(s.voq[i][j])
		}
	}
	return total
}

// Step runs one cell slot: a single-iteration request/grant/accept
// matching, then transfers the matched cells. It returns the delivered
// cells in output order.
func (s *VOQSwitch) Step() []packet.Cell {
	s.Slots++
	n := s.n
	grantFor := make([]int, n) // output -> input granted, -1 none
	for out := 0; out < n; out++ {
		grantFor[out] = -1
		// Grant: the first requesting input at/after the grant pointer.
		for k := 0; k < n; k++ {
			in := (s.grantPtr[out] + k) % n
			if len(s.voq[in][out]) > 0 {
				grantFor[out] = in
				break
			}
		}
	}
	// Accept: each input picks the first granting output at/after its
	// accept pointer.
	acceptFor := make([]int, n) // input -> output accepted, -1 none
	for in := 0; in < n; in++ {
		acceptFor[in] = -1
		for k := 0; k < n; k++ {
			out := (s.acceptPtr[in] + k) % n
			if grantFor[out] == in {
				acceptFor[in] = out
				break
			}
		}
	}
	var delivered []packet.Cell
	for out := 0; out < n; out++ {
		in := grantFor[out]
		if in == -1 || acceptFor[in] != out {
			continue
		}
		q := s.voq[in][out]
		cell := q[0]
		s.voq[in][out] = q[1:]
		delivered = append(delivered, cell)
		s.Delivered++
		// iSLIP pointer update: only on a completed match, one past the
		// matched partner — this is what desynchronizes the pointers and
		// yields 100% throughput under uniform load.
		s.grantPtr[out] = (in + 1) % n
		s.acceptPtr[in] = (out + 1) % n
	}
	return delivered
}

// FIFOSwitch is the naive input-queued crossbar: one FIFO per input, only
// the head cell is eligible, so a blocked head blocks everything behind
// it (head-of-line blocking).
type FIFOSwitch struct {
	n        int
	fifo     [][]packet.Cell
	grantPtr []int

	Enqueued  uint64
	Delivered uint64
	Slots     uint64
}

// NewFIFOSwitch builds an n×n FIFO-input switch.
func NewFIFOSwitch(n int) *FIFOSwitch {
	if n <= 0 {
		panic("fabric: switch needs at least one port")
	}
	return &FIFOSwitch{n: n, fifo: make([][]packet.Cell, n), grantPtr: make([]int, n)}
}

// Enqueue accepts a cell into its input FIFO.
func (s *FIFOSwitch) Enqueue(c packet.Cell) error {
	if c.SrcLC < 0 || c.SrcLC >= s.n || c.DstLC < 0 || c.DstLC >= s.n {
		return fmt.Errorf("fabric: cell %d->%d outside %d-port switch", c.SrcLC, c.DstLC, s.n)
	}
	s.fifo[c.SrcLC] = append(s.fifo[c.SrcLC], c)
	s.Enqueued++
	return nil
}

// Backlog returns the total queued cells.
func (s *FIFOSwitch) Backlog() int {
	total := 0
	for i := range s.fifo {
		total += len(s.fifo[i])
	}
	return total
}

// Step runs one slot: every output picks round-robin among the inputs
// whose HEAD cell targets it.
func (s *FIFOSwitch) Step() []packet.Cell {
	s.Slots++
	n := s.n
	taken := make([]bool, n) // inputs consumed this slot
	var delivered []packet.Cell
	for out := 0; out < n; out++ {
		for k := 0; k < n; k++ {
			in := (s.grantPtr[out] + k) % n
			if taken[in] || len(s.fifo[in]) == 0 {
				continue
			}
			if s.fifo[in][0].DstLC != out {
				continue // HOL blocking: only the head is eligible
			}
			delivered = append(delivered, s.fifo[in][0])
			s.fifo[in] = s.fifo[in][1:]
			s.Delivered++
			taken[in] = true
			s.grantPtr[out] = (in + 1) % n
			break
		}
	}
	return delivered
}
