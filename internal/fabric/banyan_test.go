package fabric

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/xrand"
)

func mustBanyan(t *testing.T, n int) *Banyan {
	t.Helper()
	b, err := NewBanyan(n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBanyanValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 12} {
		if _, err := NewBanyan(n); err == nil {
			t.Fatalf("n=%d accepted", n)
		}
	}
	b := mustBanyan(t, 8)
	if b.Ports() != 8 || b.Stages() != 3 {
		t.Fatalf("ports=%d stages=%d", b.Ports(), b.Stages())
	}
}

func TestBanyanSelfRoutingSingleCell(t *testing.T) {
	// Any lone cell must reach any destination: no contention, no
	// failures → delivered.
	b := mustBanyan(t, 16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			got := b.SendBatch([]packet.Cell{{SrcLC: src, DstLC: dst, Total: 1, Last: true}})
			if len(got) != 1 {
				t.Fatalf("cell %d->%d blocked in empty network", src, dst)
			}
		}
	}
	if b.Blocked != 0 {
		t.Fatalf("blocked = %d", b.Blocked)
	}
}

func TestBanyanAdmissiblePermutationsPass(t *testing.T) {
	// Identity and circular shifts are the textbook conflict-free
	// permutations of the omega network.
	for _, shift := range []int{0, 1, 3, 7} {
		b := mustBanyan(t, 8)
		var cells []packet.Cell
		for i := 0; i < 8; i++ {
			cells = append(cells, packet.Cell{SrcLC: i, DstLC: (i + shift) % 8, Total: 1, Last: true})
		}
		if got := b.SendBatch(cells); len(got) != 8 {
			t.Fatalf("shift-%d permutation delivered %d/8", shift, len(got))
		}
	}
}

func TestBanyanInternalBlockingExists(t *testing.T) {
	// Banyans are blocking networks: some permutation must block. Count
	// over random permutations; a non-trivial fraction must block, unlike
	// a crossbar.
	b := mustBanyan(t, 8)
	rng := xrand.New(7)
	blockedPerms := 0
	const trials = 200
	for tr := 0; tr < trials; tr++ {
		perm := rng.Perm(8)
		var cells []packet.Cell
		for i, d := range perm {
			cells = append(cells, packet.Cell{SrcLC: i, DstLC: d, Total: 1, Last: true})
		}
		if len(b.SendBatch(cells)) < 8 {
			blockedPerms++
		}
	}
	if blockedPerms == 0 {
		t.Fatal("no permutation ever blocked — that is a crossbar, not a banyan")
	}
	if blockedPerms == trials {
		t.Fatal("every permutation blocked — routing is broken")
	}
}

func TestBanyanUniformThroughputBand(t *testing.T) {
	// Classic result: a saturated unbuffered banyan delivers well below
	// line rate under uniform traffic (≈0.45–0.6 for n=8..16 by the
	// Patel analysis). Check we land in a sane band.
	b := mustBanyan(t, 16)
	rng := xrand.New(8)
	const slots = 4000
	for s := 0; s < slots; s++ {
		var cells []packet.Cell
		for in := 0; in < 16; in++ {
			cells = append(cells, packet.Cell{SrcLC: in, DstLC: rng.Intn(16), Total: 1, Last: true})
		}
		b.SendBatch(cells)
	}
	frac := float64(b.Delivered) / float64(b.Offered)
	if frac < 0.35 || frac > 0.75 {
		t.Fatalf("uniform throughput %.3f outside the plausible banyan band", frac)
	}
}

func TestBanyanElementFailureBlocksOnlyItsPaths(t *testing.T) {
	b := mustBanyan(t, 8)
	// Kill the first-stage element 0; under omega wiring it serves the
	// rows with row mod 4 == 0, i.e. inputs 0 and 4.
	b.FailElement(0, 0)
	if got := b.SendBatch([]packet.Cell{{SrcLC: 0, DstLC: 5, Total: 1, Last: true}}); len(got) != 0 {
		t.Fatal("cell crossed a failed element")
	}
	if got := b.SendBatch([]packet.Cell{{SrcLC: 4, DstLC: 5, Total: 1, Last: true}}); len(got) != 0 {
		t.Fatal("cell crossed a failed element (input 4)")
	}
	// Inputs outside that element still work.
	if got := b.SendBatch([]packet.Cell{{SrcLC: 1, DstLC: 5, Total: 1, Last: true}}); len(got) != 1 {
		t.Fatal("unrelated path blocked")
	}
	b.RepairElement(0, 0)
	if got := b.SendBatch([]packet.Cell{{SrcLC: 0, DstLC: 5, Total: 1, Last: true}}); len(got) != 1 {
		t.Fatal("repair ineffective")
	}
}

func TestBanyanPanics(t *testing.T) {
	b := mustBanyan(t, 4)
	for name, f := range map[string]func(){
		"bad cell":   func() { b.SendBatch([]packet.Cell{{SrcLC: 9, DstLC: 0}}) },
		"dup source": func() { b.SendBatch([]packet.Cell{{SrcLC: 0, DstLC: 1}, {SrcLC: 0, DstLC: 2}}) },
		"bad elem":   func() { b.FailElement(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
