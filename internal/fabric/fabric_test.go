package fabric

import (
	"testing"

	"repro/internal/packet"
)

func mustNew(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Ports: 0, Cards: 5, Active: 4, CellRate: 1},
		{Ports: 4, Cards: 0, Active: 0, CellRate: 1},
		{Ports: 4, Cards: 3, Active: 4, CellRate: 1},
		{Ports: 4, Cards: 5, Active: 4, CellRate: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := New(DefaultConfig(8)); err != nil {
		t.Fatal(err)
	}
}

func TestRedundancyAbsorbsSpareFailures(t *testing.T) {
	f := mustNew(t, DefaultConfig(4)) // 5 cards, 4 active: one spare
	if f.CapacityFraction() != 1 {
		t.Fatal("fresh fabric not at full capacity")
	}
	f.FailCard(0)
	if f.CapacityFraction() != 1 {
		t.Fatal("single card failure must be absorbed by the spare (paper Case 1)")
	}
	f.FailCard(1)
	if got := f.CapacityFraction(); got != 0.75 {
		t.Fatalf("capacity after 2 failures = %g, want 0.75", got)
	}
	f.RepairCard(0)
	if f.CapacityFraction() != 1 {
		t.Fatal("repair did not restore capacity")
	}
}

func TestFailCardIdempotent(t *testing.T) {
	f := mustNew(t, DefaultConfig(4))
	f.FailCard(2)
	f.FailCard(2)
	if f.HealthyCards() != 4 {
		t.Fatalf("HealthyCards = %d", f.HealthyCards())
	}
	f.RepairCard(2)
	f.RepairCard(2)
	if f.HealthyCards() != 5 {
		t.Fatalf("HealthyCards = %d after repair", f.HealthyCards())
	}
}

func TestTotalFailure(t *testing.T) {
	f := mustNew(t, Config{Ports: 2, Cards: 2, Active: 1, CellRate: 1e6})
	f.FailCard(0)
	f.FailCard(1)
	if f.Operational() {
		t.Fatal("fabric with no cards reports operational")
	}
	if f.CellDelay() != 0 {
		t.Fatal("CellDelay of dead fabric should be 0 sentinel")
	}
	if _, err := f.Transfer(packet.Cell{SrcLC: 0, DstLC: 1}); err == nil {
		t.Fatal("transfer over dead fabric succeeded")
	}
	if f.Refused != 1 {
		t.Fatalf("Refused = %d", f.Refused)
	}
}

func TestPortFaults(t *testing.T) {
	f := mustNew(t, DefaultConfig(4))
	f.FailPort(2)
	if f.PortUp(2) {
		t.Fatal("failed port reports up")
	}
	if _, err := f.Transfer(packet.Cell{SrcLC: 2, DstLC: 0}); err == nil {
		t.Fatal("transfer from failed source port succeeded")
	}
	if _, err := f.Transfer(packet.Cell{SrcLC: 0, DstLC: 2}); err == nil {
		t.Fatal("transfer to failed destination port succeeded")
	}
	if _, err := f.Transfer(packet.Cell{SrcLC: 0, DstLC: 1}); err != nil {
		t.Fatalf("unrelated transfer failed: %v", err)
	}
	f.RepairPort(2)
	if _, err := f.Transfer(packet.Cell{SrcLC: 2, DstLC: 0}); err != nil {
		t.Fatalf("transfer after port repair failed: %v", err)
	}
}

func TestLocalSwitchingBypassesFabric(t *testing.T) {
	f := mustNew(t, DefaultConfig(4))
	f.FailCard(0)
	f.FailCard(1)
	f.FailCard(2)
	f.FailCard(3)
	f.FailCard(4)
	d, err := f.Transfer(packet.Cell{SrcLC: 1, DstLC: 1})
	if err != nil || d != 0 {
		t.Fatalf("local transfer: d=%g err=%v", d, err)
	}
}

func TestCellDelayScalesWithCapacity(t *testing.T) {
	f := mustNew(t, Config{Ports: 2, Cards: 4, Active: 4, CellRate: 1e6})
	base := f.CellDelay()
	f.FailCard(0)
	f.FailCard(1)
	if got := f.CellDelay(); got != base*2 {
		t.Fatalf("half-capacity delay = %g, want %g", got, base*2)
	}
}

func TestTransferCountsForwarded(t *testing.T) {
	f := mustNew(t, DefaultConfig(3))
	for i := 0; i < 10; i++ {
		if _, err := f.Transfer(packet.Cell{SrcLC: 0, DstLC: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Forwarded != 10 {
		t.Fatalf("Forwarded = %d", f.Forwarded)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	f := mustNew(t, DefaultConfig(2))
	for name, fn := range map[string]func(){
		"card":  func() { f.FailCard(9) },
		"port":  func() { f.FailPort(9) },
		"xport": func() { f.Transfer(packet.Cell{SrcLC: 0, DstLC: 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
