package fabric

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/xrand"
)

func cell(in, out int) packet.Cell {
	return packet.Cell{SrcLC: in, DstLC: out, Total: 1, Last: true}
}

func TestVOQSingleFlowFullRate(t *testing.T) {
	s := NewVOQSwitch(4)
	for i := 0; i < 100; i++ {
		if err := s.Enqueue(cell(0, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for slot := 0; slot < 100; slot++ {
		got := s.Step()
		if len(got) != 1 || got[0].DstLC != 2 {
			t.Fatalf("slot %d delivered %v", slot, got)
		}
	}
	if s.Backlog() != 0 {
		t.Fatalf("backlog = %d", s.Backlog())
	}
}

func TestVOQPermutationTrafficFullThroughput(t *testing.T) {
	// A permutation pattern (input i -> output (i+1)%n) must sustain one
	// cell per input per slot.
	const n = 6
	s := NewVOQSwitch(n)
	const slots = 500
	for slot := 0; slot < slots; slot++ {
		for in := 0; in < n; in++ {
			if err := s.Enqueue(cell(in, (in+1)%n)); err != nil {
				t.Fatal(err)
			}
		}
		if got := len(s.Step()); got != n {
			t.Fatalf("slot %d delivered %d, want %d", slot, got, n)
		}
	}
}

func TestVOQUniformHighLoadNearFullThroughput(t *testing.T) {
	// Bernoulli arrivals at 95% load, uniform destinations: iSLIP-style
	// matching must deliver essentially all of it (backlog stays small
	// relative to the cells moved).
	const n = 8
	const slots = 60000
	const load = 0.95
	s := NewVOQSwitch(n)
	rng := xrand.New(9)
	for slot := 0; slot < slots; slot++ {
		for in := 0; in < n; in++ {
			if rng.Float64() < load {
				out := rng.Intn(n)
				if err := s.Enqueue(cell(in, out)); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Step()
	}
	throughput := float64(s.Delivered) / float64(slots) / n
	if throughput < 0.93 {
		t.Fatalf("VOQ throughput %.3f at load %.2f — matching is broken", throughput, load)
	}
	if s.Backlog() > int(0.05*float64(s.Enqueued)) {
		t.Fatalf("backlog %d too large vs enqueued %d", s.Backlog(), s.Enqueued)
	}
}

func TestFIFOHOLBlockingSaturates(t *testing.T) {
	// The same uniform traffic through FIFO inputs saturates near the
	// classic 58.6% bound (2−√2).
	const n = 8
	const slots = 60000
	s := NewFIFOSwitch(n)
	rng := xrand.New(10)
	for slot := 0; slot < slots; slot++ {
		for in := 0; in < n; in++ {
			// Saturated inputs: always backlogged.
			if len(s.fifo[in]) < 50 {
				s.Enqueue(cell(in, rng.Intn(n)))
			}
		}
		s.Step()
	}
	throughput := float64(s.Delivered) / float64(slots) / n
	if throughput > 0.70 || throughput < 0.50 {
		t.Fatalf("FIFO saturation throughput %.3f, expected near the 0.586 HOL bound", throughput)
	}
}

func TestVOQBeatsFIFOUnderSaturation(t *testing.T) {
	const n = 8
	const slots = 30000
	voq := NewVOQSwitch(n)
	fifo := NewFIFOSwitch(n)
	rngA := xrand.New(11)
	rngB := xrand.New(11) // identical arrival sequence
	for slot := 0; slot < slots; slot++ {
		for in := 0; in < n; in++ {
			if voq.Backlog() < 50*n {
				voq.Enqueue(cell(in, rngA.Intn(n)))
			}
			if fifo.Backlog() < 50*n {
				fifo.Enqueue(cell(in, rngB.Intn(n)))
			}
		}
		voq.Step()
		fifo.Step()
	}
	if voq.Delivered <= fifo.Delivered {
		t.Fatalf("VOQ %d not above FIFO %d", voq.Delivered, fifo.Delivered)
	}
}

func TestVOQNoStarvation(t *testing.T) {
	// A lone low-rate flow competing against saturated flows to the same
	// output must still be served (round-robin pointers guarantee it).
	const n = 4
	s := NewVOQSwitch(n)
	// Saturate inputs 1..3 toward output 0.
	for i := 0; i < 300; i++ {
		for in := 1; in < n; in++ {
			s.Enqueue(cell(in, 0))
		}
	}
	// One cell from input 0 to output 0.
	s.Enqueue(cell(0, 0))
	servedAt := -1
	for slot := 0; slot < 4*n; slot++ {
		for _, c := range s.Step() {
			if c.SrcLC == 0 {
				servedAt = slot
			}
		}
		if servedAt >= 0 {
			break
		}
	}
	if servedAt < 0 {
		t.Fatal("flow starved beyond a full round-robin cycle")
	}
}

func TestSwitchValidation(t *testing.T) {
	s := NewVOQSwitch(2)
	if err := s.Enqueue(cell(0, 5)); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	f := NewFIFOSwitch(2)
	if err := f.Enqueue(cell(-1, 0)); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	for _, fn := range []func(){func() { NewVOQSwitch(0) }, func() { NewFIFOSwitch(0) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestVOQConservation(t *testing.T) {
	const n = 5
	s := NewVOQSwitch(n)
	rng := xrand.New(12)
	enq := 0
	for slot := 0; slot < 5000; slot++ {
		if rng.Float64() < 0.7 {
			s.Enqueue(cell(rng.Intn(n), rng.Intn(n)))
			enq++
		}
		s.Step()
	}
	// Drain.
	for s.Backlog() > 0 {
		s.Step()
	}
	if int(s.Delivered) != enq {
		t.Fatalf("delivered %d != enqueued %d", s.Delivered, enq)
	}
}

func BenchmarkVOQStep(b *testing.B) {
	const n = 16
	s := NewVOQSwitch(n)
	rng := xrand.New(1)
	for i := 0; i < n*n*4; i++ {
		s.Enqueue(cell(rng.Intn(n), rng.Intn(n)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
		// Keep it loaded.
		s.Enqueue(cell(rng.Intn(n), rng.Intn(n)))
	}
}
