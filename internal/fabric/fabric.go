// Package fabric models the router's cell-based switching fabric with
// explicit card-level redundancy, as in the Cisco 12000 configuration the
// paper cites: a fabric is built from a number of parallel fabric cards of
// which a subset must be active to carry full load, and the remainder are
// hot spares (e.g. five cards with 1:4 redundancy).
//
// The paper's Case 1 says a fabric failure "poses no service disruption
// given adequate redundancy"; this package makes that assumption explicit
// and testable rather than axiomatic: the fabric stays fully operational
// while failed cards do not exceed the spare count, and degrades
// proportionally beyond that.
package fabric

import (
	"fmt"

	"repro/internal/packet"
)

// Config describes a switching fabric.
type Config struct {
	Ports int // one fabric port per linecard
	// Cards is the total number of fabric cards; Active is how many are
	// needed for full bandwidth. Cards-Active is the spare count (1:k
	// redundancy has Cards = k+1, Active = k).
	Cards  int
	Active int
	// CellRate is the per-port cell forwarding rate in cells per time
	// unit at full capacity.
	CellRate float64
}

// DefaultConfig mirrors a Cisco-12000-style fabric: five cards, four
// active (1:4 redundancy).
func DefaultConfig(ports int) Config {
	return Config{Ports: ports, Cards: 5, Active: 4, CellRate: 25e6}
}

// Fabric is the switching fabric state.
type Fabric struct {
	cfg        Config
	cardFailed []bool
	portFailed []bool
	nFailed    int

	// Forwarded and Refused count cell transfer attempts.
	Forwarded uint64
	Refused   uint64

	// ver counts health-state mutations (card/port fail and repair); see
	// Version.
	ver uint64
}

// New validates the configuration and returns a fabric with all cards and
// ports healthy.
func New(cfg Config) (*Fabric, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("fabric: need at least one port, got %d", cfg.Ports)
	}
	if cfg.Cards <= 0 || cfg.Active <= 0 || cfg.Active > cfg.Cards {
		return nil, fmt.Errorf("fabric: invalid card configuration %d active of %d", cfg.Active, cfg.Cards)
	}
	if cfg.CellRate <= 0 {
		return nil, fmt.Errorf("fabric: cell rate must be positive")
	}
	return &Fabric{
		cfg:        cfg,
		cardFailed: make([]bool, cfg.Cards),
		portFailed: make([]bool, cfg.Ports),
	}, nil
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Version returns a counter that changes whenever the fabric's health
// state (cards or ports) does — a cheap cache-invalidation key for
// derived predicates such as router.CanDeliverCached.
func (f *Fabric) Version() uint64 { return f.ver }

// FailCard marks fabric card i failed. Failing an already-failed card is a
// no-op.
func (f *Fabric) FailCard(i int) {
	f.checkCard(i)
	if !f.cardFailed[i] {
		f.cardFailed[i] = true
		f.nFailed++
		f.ver++
	}
}

// RepairCard restores fabric card i.
func (f *Fabric) RepairCard(i int) {
	f.checkCard(i)
	if f.cardFailed[i] {
		f.cardFailed[i] = false
		f.nFailed--
		f.ver++
	}
}

func (f *Fabric) checkCard(i int) {
	if i < 0 || i >= f.cfg.Cards {
		panic(fmt.Sprintf("fabric: card %d out of range", i))
	}
}

// FailPort marks the fabric port of linecard lc failed — the paper's
// "switching fabric port" fault along the routing path.
func (f *Fabric) FailPort(lc int) {
	f.checkPort(lc)
	if !f.portFailed[lc] {
		f.portFailed[lc] = true
		f.ver++
	}
}

// RepairPort restores the fabric port of linecard lc.
func (f *Fabric) RepairPort(lc int) {
	f.checkPort(lc)
	if f.portFailed[lc] {
		f.portFailed[lc] = false
		f.ver++
	}
}

// PortUp reports whether linecard lc's fabric port is healthy.
func (f *Fabric) PortUp(lc int) bool {
	f.checkPort(lc)
	return !f.portFailed[lc]
}

func (f *Fabric) checkPort(lc int) {
	if lc < 0 || lc >= f.cfg.Ports {
		panic(fmt.Sprintf("fabric: port %d out of range", lc))
	}
}

// HealthyCards returns the number of operating fabric cards.
func (f *Fabric) HealthyCards() int { return f.cfg.Cards - f.nFailed }

// CapacityFraction returns the fraction of nominal bandwidth currently
// available: 1.0 while failures are absorbed by spares, proportionally
// less once fewer than Active cards remain, and 0 with no cards.
func (f *Fabric) CapacityFraction() float64 {
	h := f.HealthyCards()
	if h >= f.cfg.Active {
		return 1
	}
	return float64(h) / float64(f.cfg.Active)
}

// Operational reports whether the fabric can carry any traffic at all.
func (f *Fabric) Operational() bool { return f.HealthyCards() > 0 }

// CellDelay returns the time to transfer one cell at the current capacity.
func (f *Fabric) CellDelay() float64 {
	frac := f.CapacityFraction()
	if frac == 0 {
		return 0
	}
	return 1 / (f.cfg.CellRate * frac)
}

// Transfer attempts to move a cell from its source port to its destination
// port, returning the transfer delay. It fails when the fabric is down or
// either port is failed; the caller (the SRU) then falls back to the EIB
// path per the DRA fault model.
func (f *Fabric) Transfer(c packet.Cell) (delay float64, err error) {
	if c.SrcLC == c.DstLC {
		// Local switching does not traverse the fabric.
		f.Forwarded++
		return 0, nil
	}
	f.checkPort(c.SrcLC)
	f.checkPort(c.DstLC)
	if !f.Operational() {
		f.Refused++
		return 0, fmt.Errorf("fabric: no healthy cards")
	}
	if f.portFailed[c.SrcLC] {
		f.Refused++
		return 0, fmt.Errorf("fabric: source port %d failed", c.SrcLC)
	}
	if f.portFailed[c.DstLC] {
		f.Refused++
		return 0, fmt.Errorf("fabric: destination port %d failed", c.DstLC)
	}
	f.Forwarded++
	return f.CellDelay(), nil
}
