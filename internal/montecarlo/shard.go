package montecarlo

// Deterministic sharding of fixed-count estimation runs across a worker
// fleet.
//
// A replication's random stream depends only on (Seed, replication
// index): streams are split sequentially from the master, so the stream
// of rep i is the master state after i jumps (see TrialStream). A shard
// [Lo, Hi) therefore runs its replications bit-identically no matter
// which worker executes it, how often it is killed and re-run, or what
// the other shards are doing.
//
// Shards return RAW per-replication outcomes, not folded accumulators:
// Welford/ratio accumulators are order-sensitive recurrences, so merging
// partial accumulator states would not reproduce the standalone result
// bit-for-bit. Instead the coordinator folds every shard's outcomes in
// global replication order through the same fold methods the standalone
// estimators use (foldOutcome, foldCycle, Welford.Add) — the merged
// result is the standalone result, byte for byte.
//
// Only fixed-count runs shard (TargetRelErr must be zero): a sequential
// stopping rule is a global decision over the fold order and cannot be
// evaluated per shard.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// RelOutcome is one reliability replication's raw outcome on the wire.
// encoding/json round-trips float64 exactly, so shipping outcomes
// through a coordinator loses nothing.
type RelOutcome struct {
	// FailedAt is the time of the first service failure, -1 if the
	// service survived the horizon.
	FailedAt float64 `json:"failed_at"`
	// LogW is the trajectory's accumulated log likelihood ratio
	// (0 for unbiased runs).
	LogW float64 `json:"log_w"`
}

// CycleOutcome is one regenerative cycle's raw outcome on the wire.
type CycleOutcome struct {
	LogW     float64 `json:"log_w"`
	Down     float64 `json:"down"`
	WentDown bool    `json:"went_down,omitempty"`
	Tau      float64 `json:"tau"`
}

// ShardResult carries a shard's raw outcomes back to the merge. Exactly
// one of Rel, Avail, Cycles is populated, indexed by rep−Lo; slots of
// replications that panicked are zero-valued and recorded in Failed
// (keyed by FailedTrial.Rep), mirroring how the standalone scheduler
// excludes failed trials from the fold.
type ShardResult struct {
	Mode string `json:"mode"`
	Seed uint64 `json:"seed"`
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`

	Rel    []RelOutcome     `json:"rel,omitempty"`
	Avail  []float64        `json:"avail,omitempty"`
	Cycles [][]CycleOutcome `json:"cycles,omitempty"`

	Failed []FailedTrial `json:"failed,omitempty"`
}

// shardMaster positions the master generator at replication lo.
func shardMaster(seed, lo uint64) *xrand.Source {
	m := xrand.New(seed)
	for i := uint64(0); i < lo; i++ {
		m.Jump()
	}
	return m
}

// validateShard rejects shard bounds outside the run.
func validateShard(opt Options, lo, hi uint64) error {
	if lo >= hi || hi > uint64(opt.Reps) {
		return fmt.Errorf("montecarlo: shard [%d, %d) outside run of %d reps", lo, hi, opt.Reps)
	}
	if opt.TargetRelErr > 0 {
		return fmt.Errorf("montecarlo: sequential-stopping runs cannot shard (the stopping rule is a global fold-order decision)")
	}
	return nil
}

// runShard executes replications [lo, hi) in batch-sized chunks (for
// Ctx interruption granularity) and records raw outcomes via record.
func runShard[T any](opt Options, lo, hi uint64,
	one func(Options, uint64, *xrand.Source) (T, error),
	record func(rep uint64, v T), failed *[]FailedTrial) error {
	master := shardMaster(opt.Seed, lo)
	batch := uint64(opt.batchSize())
	for done := lo; done < hi; {
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			return context.Cause(opt.Ctx)
		}
		n := batch
		if rest := hi - done; n > rest {
			n = rest
		}
		streams := splitN(master, int(n))
		outs, err := runBatch(opt, done, streams, one)
		if err != nil {
			return err
		}
		for i, tr := range outs {
			if tr.failed != nil {
				*failed = append(*failed, *tr.failed)
				continue
			}
			record(done+uint64(i), tr.v)
		}
		done += n
	}
	return nil
}

// RunReliabilityShard runs replications [lo, hi) of a reliability run
// and returns their raw outcomes.
func RunReliabilityShard(opt Options, lo, hi uint64) (ShardResult, error) {
	if err := opt.Validate(); err != nil {
		return ShardResult{}, err
	}
	if opt.Rates.Repair != 0 {
		return ShardResult{}, fmt.Errorf("montecarlo: reliability runs must not repair")
	}
	if err := validateShard(opt, lo, hi); err != nil {
		return ShardResult{}, err
	}
	out := ShardResult{Mode: ModeReliability, Seed: opt.Seed, Lo: lo, Hi: hi,
		Rel: make([]RelOutcome, hi-lo)}
	err := runShard(opt, lo, hi, reliabilityRep, func(rep uint64, v relOut) {
		out.Rel[rep-lo] = RelOutcome{FailedAt: v.failedAt, LogW: v.logW}
	}, &out.Failed)
	return out, err
}

// RunAvailabilityShard runs replications [lo, hi) of an availability
// run and returns their raw outcomes.
func RunAvailabilityShard(opt Options, lo, hi uint64) (ShardResult, error) {
	if err := opt.Validate(); err != nil {
		return ShardResult{}, err
	}
	if opt.Rates.Repair <= 0 {
		return ShardResult{}, fmt.Errorf("montecarlo: availability runs need repair")
	}
	if opt.Biasing.Enabled {
		return ShardResult{}, fmt.Errorf("montecarlo: whole-horizon availability cannot be importance-sampled; use EstimateUnavailability")
	}
	if err := validateShard(opt, lo, hi); err != nil {
		return ShardResult{}, err
	}
	out := ShardResult{Mode: ModeAvailability, Seed: opt.Seed, Lo: lo, Hi: hi,
		Avail: make([]float64, hi-lo)}
	err := runShard(opt, lo, hi, availabilityRep, func(rep uint64, v float64) {
		out.Avail[rep-lo] = v
	}, &out.Failed)
	return out, err
}

// RunUnavailabilityShard runs replications [lo, hi) of a regenerative
// unavailability run and returns their raw per-cycle outcomes.
func RunUnavailabilityShard(opt Options, lo, hi uint64) (ShardResult, error) {
	if opt.Horizon == 0 {
		opt.Horizon = 1 // unused by the regenerative estimator
	}
	if err := opt.Validate(); err != nil {
		return ShardResult{}, err
	}
	if opt.Rates.Repair <= 0 {
		return ShardResult{}, fmt.Errorf("montecarlo: regenerative unavailability needs repair")
	}
	if err := validateShard(opt, lo, hi); err != nil {
		return ShardResult{}, err
	}
	out := ShardResult{Mode: ModeUnavailability, Seed: opt.Seed, Lo: lo, Hi: hi,
		Cycles: make([][]CycleOutcome, hi-lo)}
	err := runShard(opt, lo, hi, unavailabilityRep, func(rep uint64, cs []cycleOut) {
		ocs := make([]CycleOutcome, len(cs))
		for i, c := range cs {
			ocs[i] = CycleOutcome{LogW: c.logW, Down: c.down, WentDown: c.wentDown, Tau: c.tau}
		}
		out.Cycles[rep-lo] = ocs
	}, &out.Failed)
	return out, err
}

// orderShards sorts a copy of parts by Lo and verifies they tile
// [0, Reps) contiguously with matching mode and seed.
func orderShards(opt Options, mode string, parts []ShardResult) ([]ShardResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("montecarlo: no shards to merge")
	}
	sorted := append([]ShardResult(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	next := uint64(0)
	for _, p := range sorted {
		if p.Mode != mode {
			return nil, fmt.Errorf("montecarlo: shard [%d, %d) is a %s shard, merge expects %s", p.Lo, p.Hi, p.Mode, mode)
		}
		if p.Seed != opt.Seed {
			return nil, fmt.Errorf("montecarlo: shard [%d, %d) ran under seed %d, merge expects %d", p.Lo, p.Hi, p.Seed, opt.Seed)
		}
		if p.Lo != next {
			return nil, fmt.Errorf("montecarlo: shard gap at rep %d (next shard starts at %d)", next, p.Lo)
		}
		next = p.Hi
	}
	if next != uint64(opt.Reps) {
		return nil, fmt.Errorf("montecarlo: shards cover [0, %d), run has %d reps", next, opt.Reps)
	}
	return sorted, nil
}

// failedSet indexes a shard's failed replications.
func failedSet(p ShardResult) map[uint64]bool {
	if len(p.Failed) == 0 {
		return nil
	}
	s := make(map[uint64]bool, len(p.Failed))
	for _, f := range p.Failed {
		s[f.Rep] = true
	}
	return s
}

// mergeBatches reports the batch count the standalone scheduler would
// have recorded for the same fixed-count run.
func mergeBatches(opt Options) int {
	b := opt.Reps
	if opt.TargetRelErr > 0 || opt.Batch > 0 {
		b = opt.batchSize()
	}
	return (opt.Reps + b - 1) / b
}

// MergeReliabilityShards folds shard outcomes in global replication
// order into the result EstimateReliability would have produced for the
// same options — bit-identical, including TTF sample order and failed
// trials.
func MergeReliabilityShards(opt Options, parts []ShardResult) (ReliabilityResult, error) {
	if err := opt.Validate(); err != nil {
		return ReliabilityResult{}, err
	}
	sorted, err := orderShards(opt, ModeReliability, parts)
	if err != nil {
		return ReliabilityResult{}, err
	}
	res := ReliabilityResult{Horizon: opt.Horizon, Biased: opt.Biasing.Enabled}
	for _, p := range sorted {
		skip := failedSet(p)
		for rep := p.Lo; rep < p.Hi; rep++ {
			if skip[rep] {
				continue
			}
			o := p.Rel[rep-p.Lo]
			res.foldOutcome(opt.Horizon, relOut{failedAt: o.FailedAt, logW: o.LogW})
		}
		res.Failed = append(res.Failed, p.Failed...)
	}
	res.Batches, res.StopReason = mergeBatches(opt), StopFixed
	lo, hi := res.CI()
	publishCI(opt, lo, hi)
	if res.Biased {
		publishWeights(opt, &res.Weights)
	}
	return res, nil
}

// MergeAvailabilityShards folds shard outcomes in global replication
// order into the result EstimateAvailability would have produced.
func MergeAvailabilityShards(opt Options, parts []ShardResult) (AvailabilityResult, error) {
	if err := opt.Validate(); err != nil {
		return AvailabilityResult{}, err
	}
	sorted, err := orderShards(opt, ModeAvailability, parts)
	if err != nil {
		return AvailabilityResult{}, err
	}
	res := AvailabilityResult{Horizon: opt.Horizon}
	for _, p := range sorted {
		skip := failedSet(p)
		for rep := p.Lo; rep < p.Hi; rep++ {
			if !skip[rep] {
				res.PerRep.Add(p.Avail[rep-p.Lo])
			}
		}
		res.Failed = append(res.Failed, p.Failed...)
	}
	res.Batches, res.StopReason = mergeBatches(opt), StopFixed
	lo, hi := res.CI()
	publishCI(opt, lo, hi)
	return res, nil
}

// MergeUnavailabilityShards folds shard cycles in global replication
// order into the result EstimateUnavailability would have produced.
func MergeUnavailabilityShards(opt Options, parts []ShardResult) (UnavailabilityResult, error) {
	if opt.Horizon == 0 {
		opt.Horizon = 1
	}
	if err := opt.Validate(); err != nil {
		return UnavailabilityResult{}, err
	}
	sorted, err := orderShards(opt, ModeUnavailability, parts)
	if err != nil {
		return UnavailabilityResult{}, err
	}
	cyclesCtr := opt.Metrics.Counter("montecarlo_cycles_total", "Regenerative repair cycles simulated.")
	downCtr := opt.Metrics.Counter("montecarlo_down_cycles_total", "Cycles in which the target LC lost service.")
	res := UnavailabilityResult{}
	for _, p := range sorted {
		skip := failedSet(p)
		for rep := p.Lo; rep < p.Hi; rep++ {
			if skip[rep] {
				continue
			}
			for _, c := range p.Cycles[rep-p.Lo] {
				res.foldCycle(cycleOut{logW: c.LogW, down: c.Down, wentDown: c.WentDown, tau: c.Tau}, cyclesCtr, downCtr)
			}
		}
		res.Failed = append(res.Failed, p.Failed...)
	}
	res.Batches, res.StopReason = mergeBatches(opt), StopFixed
	lo, hi := res.CI()
	publishCI(opt, lo, hi)
	publishWeights(opt, &res.Weights)
	return res, nil
}
