package montecarlo

import (
	"math"
	"testing"

	"repro/internal/linecard"
	"repro/internal/router"
)

// TestBiasedReliabilityMatchesCrude checks the likelihood-ratio
// reliability estimator end to end: on a parameterisation where crude
// Monte Carlo has plenty of signal, the biased and crude estimates of
// F(Horizon) must agree within their combined CIs.
func TestBiasedReliabilityMatchesCrude(t *testing.T) {
	base := Options{
		Arch: linecard.DRA, N: 4, M: 2,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 2000, Seed: 41,
		Workers: 4,
	}
	crude, err := EstimateReliability(base)
	if err != nil {
		t.Fatal(err)
	}
	biased := base
	biased.Seed = 42
	// Without repair, δ > 0.5 inflates the post-first-failure rates
	// (Λ' = odds(δ)·Λ_alive), accelerating the failure accumulation that
	// takes a DRA service down.
	biased.Biasing = router.Biasing{Enabled: true, Delta: 0.7}
	bres, err := EstimateReliability(biased)
	if err != nil {
		t.Fatal(err)
	}
	if !bres.Biased || bres.Weights.N() != base.Reps {
		t.Fatalf("biased bookkeeping: Biased=%v weights=%d", bres.Biased, bres.Weights.N())
	}
	if bres.TTF.N() != 0 || len(bres.TTFSamples) != 0 {
		t.Fatal("biased runs must not report TTF statistics (biased failure times)")
	}
	diff := math.Abs(crude.Estimate() - bres.Estimate())
	// 99.9% band on the difference of independent estimates.
	cse := crude.Failure.StdErr()
	bse := bres.Failure.StdErr()
	tol := 3.29 * math.Hypot(cse, bse)
	if diff > tol {
		t.Fatalf("crude R %.4f vs biased R %.4f: |Δ| = %.4g > %.4g",
			crude.Estimate(), bres.Estimate(), diff, tol)
	}
}

// TestSequentialStoppingReliability: with TargetRelErr set, the engine
// must run batches only until the failure estimate's relative CI
// half-width reaches the target, and report the stop faithfully.
func TestSequentialStoppingReliability(t *testing.T) {
	opt := Options{
		Arch: linecard.BDR, N: 4, M: 4,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 100000, Seed: 7,
		Workers:      4,
		TargetRelErr: 0.05,
		Batch:        500,
	}
	res, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopTarget {
		t.Fatalf("stop = %q, want %q (rel err %g)", res.StopReason, StopTarget, res.Failure.RelHalfWidth(1.96))
	}
	if got := res.Failure.RelHalfWidth(1.96); got > 0.05 {
		t.Fatalf("stopped at rel err %g > target", got)
	}
	n := res.Survival.Trials
	if n >= opt.Reps {
		t.Fatalf("sequential stopping ran the whole %d budget", n)
	}
	if n%500 != 0 || res.Batches != n/500 {
		t.Fatalf("batch accounting: %d trials in %d batches", n, res.Batches)
	}
	// BDR closed form as a sanity anchor.
	want := math.Exp(-2e-5 * 40000)
	lo, hi := res.CI()
	if want < lo-0.02 || want > hi+0.02 {
		t.Fatalf("R = %.4f [%.4f, %.4f], closed form %.4f", res.Estimate(), lo, hi, want)
	}
}

// TestSequentialStoppingBudgetCap: an unreachable target must exhaust the
// Reps budget and say so.
func TestSequentialStoppingBudgetCap(t *testing.T) {
	opt := Options{
		Arch: linecard.BDR, N: 4, M: 4,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 600, Seed: 7,
		TargetRelErr: 0.001, // needs ~10^6 reps: not reachable in 600
		Batch:        200,
	}
	res, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopBudget {
		t.Fatalf("stop = %q, want %q", res.StopReason, StopBudget)
	}
	if res.Survival.Trials != 600 || res.Batches != 3 {
		t.Fatalf("budget accounting: %d trials, %d batches", res.Survival.Trials, res.Batches)
	}
}

// TestFixedRepsStopReason: without a target the scheduler runs exactly
// Reps replications in one batch and reports the fixed stop.
func TestFixedRepsStopReason(t *testing.T) {
	opt := Options{
		Arch: linecard.BDR, N: 4, M: 4,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 50, Seed: 7,
	}
	res, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopFixed || res.Batches != 1 || res.Survival.Trials != 50 {
		t.Fatalf("fixed run: stop %q, %d batches, %d trials", res.StopReason, res.Batches, res.Survival.Trials)
	}
}

// TestOptionsValidateNewKnobs covers the engine's new configuration
// surface.
func TestOptionsValidateNewKnobs(t *testing.T) {
	base := Options{Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(0), Horizon: 1000, Reps: 10}
	bad := []func(*Options){
		func(o *Options) { o.TargetRelErr = -0.1 },
		func(o *Options) { o.TargetRelErr = 1 },
		func(o *Options) { o.Batch = -5 },
		func(o *Options) { o.CyclesPerRep = -1 },
		func(o *Options) { o.Biasing = router.Biasing{Enabled: true, Delta: 2} },
	}
	for i, mod := range bad {
		o := base
		mod(&o)
		if o.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	ok := base
	ok.TargetRelErr = 0.1
	ok.Batch = 7
	ok.CyclesPerRep = 3
	ok.Biasing = router.Biasing{Enabled: true, Delta: 0.3}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}
