package montecarlo

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/linecard"
	"repro/internal/router"
	"repro/internal/topology"
)

// goldenOptions reproduces the exact run that generated
// testdata/golden_bus_checkpoint.json at the pre-topology seed commit: a
// small biased regenerative unavailability estimate, single worker, fixed
// batch size. Any change to the bus-kind RNG draw sequence, the injector
// arming order, or the service predicate shows up as a byte diff in the
// final checkpoint.
func goldenOptions(onBatch func(Checkpoint)) Options {
	return Options{
		Arch: linecard.DRA, N: 9, M: 4,
		Rates:        router.PaperRates(1.0 / 3),
		Reps:         48,
		Seed:         7,
		CyclesPerRep: 20,
		Batch:        16,
		Workers:      1,
		Biasing:      router.Biasing{Enabled: true, Delta: 0.3},
		OnBatch:      onBatch,
	}
}

// TestBusCheckpointBitIdentical is the bus-equivalence pin: the bus
// expressed through the topology graph must reproduce the seed code's
// rare-event checkpoint byte for byte — same weights, same ratio
// accumulator states, same cycle counts, to the last bit of every float.
func TestBusCheckpointBitIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_bus_checkpoint.json"))
	if err != nil {
		t.Fatal(err)
	}
	var last Checkpoint
	if _, err := EstimateUnavailability(goldenOptions(func(c Checkpoint) { last = c })); err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(last, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("bus-through-graph checkpoint diverged from the seed golden.\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestBusExplicitSpecMatchesZero proves every spelling of the bus runs
// the same trajectory: an explicit {"kind":"bus"} spec produces the same
// final checkpoint as the zero-value topology.
func TestBusExplicitSpecMatchesZero(t *testing.T) {
	run := func(spec topology.Spec) Checkpoint {
		var last Checkpoint
		opt := goldenOptions(func(c Checkpoint) { last = c })
		opt.Topology = spec
		if _, err := EstimateUnavailability(opt); err != nil {
			t.Fatal(err)
		}
		return last
	}
	zero, _ := json.Marshal(run(topology.Spec{}))
	explicit, _ := json.Marshal(run(topology.Spec{Kind: "bus"}))
	if !bytes.Equal(zero, explicit) {
		t.Fatalf("explicit bus spec diverged from zero spec:\n%s\nvs\n%s", zero, explicit)
	}
}

// TestTopologyEstimatesRun exercises the full estimator stack on the
// non-bus kinds: the same biased regenerative machinery must run to
// completion and produce finite accumulators on mesh and fat-tree
// interconnects.
func TestTopologyEstimatesRun(t *testing.T) {
	for _, spec := range []topology.Spec{
		{Kind: "crossbar"},
		{Kind: "mesh"},
		{Kind: "fattree"},
	} {
		t.Run(spec.Kind, func(t *testing.T) {
			opt := goldenOptions(nil)
			opt.Topology = spec
			res, err := EstimateUnavailability(opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles == 0 {
				t.Fatal("no regenerative cycles completed")
			}
			if u := res.Estimate(); u < 0 || u > 1 {
				t.Fatalf("unavailability estimate %g outside [0,1]", u)
			}
		})
	}
}
