package montecarlo

import (
	"math"
	"testing"

	"repro/internal/linecard"
	"repro/internal/models"
	"repro/internal/router"
)

// TestRareEventUnavailabilityMatchesGTH is experiment E5b: the
// importance-sampled regenerative estimate of DRA(9,4) steady-state
// unavailability at μ = 1/3 must agree with the analytical chain's GTH
// steady state — deep inside the 9^7–9^8 band where crude Monte Carlo
// observes nothing. The run stops at a 10% relative CI half-width within
// a 10^6-cycle budget; agreement is asserted at the 99.9% band (3.29σ)
// to keep the suite quiet.
func TestRareEventUnavailabilityMatchesGTH(t *testing.T) {
	if testing.Short() {
		t.Skip("rare-event E5b cross-validation is a long test")
	}
	p := models.PaperParams(9, 4)
	p.Mu = 1.0 / 3
	m, err := models.DRAAvailability(p)
	if err != nil {
		t.Fatal(err)
	}
	analytic := 1 - m.Availability()

	opt := Options{
		Arch:         linecard.DRA,
		N:            9,
		M:            4,
		Rates:        router.PaperRates(1.0 / 3),
		Reps:         10_000, // × CyclesPerRep = 10^6-cycle budget cap
		Seed:         5,
		Workers:      4,
		Biasing:      router.Biasing{Enabled: true, Delta: 0.3},
		TargetRelErr: 0.10,
		CyclesPerRep: 100,
	}
	res, err := EstimateUnavailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("analytic U = %.4g, estimate = %.4g (rel err %.3f, %d cycles, %d down, ESS %.0f, stop %q)",
		analytic, res.Estimate(), res.RelHalfWidth(), res.Cycles, res.DownCycles, res.Weights.ESS(), res.StopReason)
	if res.StopReason != StopTarget {
		t.Fatalf("did not reach the 10%% target within budget: stop = %q, rel err = %g", res.StopReason, res.RelHalfWidth())
	}
	if res.Cycles > 1_000_000 {
		t.Fatalf("budget exceeded: %d cycles", res.Cycles)
	}
	est := res.Estimate()
	// 99.9% agreement band: scale the 95% half-width by 3.29/1.96.
	band := res.RelHalfWidth() * 3.29 / 1.96 * est
	if math.Abs(est-analytic) > band {
		t.Fatalf("estimate %.4g vs GTH %.4g: outside ±%.4g", est, analytic, band)
	}
	if res.DownCycles == 0 {
		t.Fatal("biased run must observe down cycles")
	}
}

// TestCrudeRegenerativeObservesNothing pins the motivation for the whole
// engine: at the same per-cycle budget, crude regenerative simulation of
// the DRA(9,4) μ=1/3 system observes zero down cycles, so its estimate
// degenerates to 0 with an uninformative CI.
func TestCrudeRegenerativeObservesNothing(t *testing.T) {
	opt := Options{
		Arch:         linecard.DRA,
		N:            9,
		M:            4,
		Rates:        router.PaperRates(1.0 / 3),
		Reps:         200, // × 100 = 2·10^4 cycles: P(any down cycle) ≈ 10^-3
		Seed:         5,
		Workers:      4,
		CyclesPerRep: 100,
	}
	res, err := EstimateUnavailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownCycles != 0 {
		// Not impossible (p ≈ 6·10^-5 per cycle is the multi-failure
		// probability bound) but at this seed it does not happen.
		t.Fatalf("crude run observed %d down cycles", res.DownCycles)
	}
	if res.Estimate() != 0 {
		t.Fatalf("estimate = %g, want degenerate 0", res.Estimate())
	}
	if !math.IsInf(res.RelHalfWidth(), 1) {
		t.Fatal("degenerate estimate must report +Inf relative error")
	}
	// Crude weights are exactly 1.
	if res.Weights.Max != 0 || res.Weights.Min != 0 {
		t.Fatalf("crude log-weights [%g, %g], want [0, 0]", res.Weights.Min, res.Weights.Max)
	}
}

// TestUnavailabilityBiasedMatchesCrudeWhereBothWork checks unbiasedness
// end to end on a failure-prone parameterisation where crude regenerative
// simulation has plenty of signal: the biased and crude estimates must
// agree within their combined CIs.
func TestUnavailabilityBiasedMatchesCrudeWhereBothWork(t *testing.T) {
	base := Options{
		Arch:         linecard.DRA,
		N:            4,
		M:            2,
		Rates:        router.FaultRates{PDLU: 2e-3, SRU: 2e-3, LFE: 2e-3, BC: 1e-3, Bus: 1e-3, Repair: 0.05},
		Reps:         300,
		Seed:         11,
		Workers:      4,
		CyclesPerRep: 50,
	}
	crude, err := EstimateUnavailability(base)
	if err != nil {
		t.Fatal(err)
	}
	biased := base
	biased.Seed = 12
	biased.Biasing = router.Biasing{Enabled: true, Delta: 0.5}
	bres, err := EstimateUnavailability(biased)
	if err != nil {
		t.Fatal(err)
	}
	if crude.DownCycles == 0 || bres.DownCycles == 0 {
		t.Fatalf("parameterisation not failure-prone enough: crude %d, biased %d down cycles", crude.DownCycles, bres.DownCycles)
	}
	diff := math.Abs(crude.Estimate() - bres.Estimate())
	// 99.9% band on the difference of independent estimates.
	tol := 3.29 * math.Hypot(crude.Ratio.StdErr(), bres.Ratio.StdErr())
	if diff > tol {
		t.Fatalf("crude %.4g vs biased %.4g: |Δ| = %.3g > %.3g", crude.Estimate(), bres.Estimate(), diff, tol)
	}
}

// TestUnavailabilityRejectsNoRepair: regenerative cycles end at repair
// completions, so a zero repair rate is a configuration error.
func TestUnavailabilityRejectsNoRepair(t *testing.T) {
	opt := Options{Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(0), Reps: 10}
	if _, err := EstimateUnavailability(opt); err == nil {
		t.Fatal("no-repair run accepted")
	}
}

// TestAvailabilityRejectsBiasing: the whole-horizon availability
// estimator must refuse importance sampling (its weights degenerate
// across repair cycles) and point at the regenerative estimator.
func TestAvailabilityRejectsBiasing(t *testing.T) {
	opt := Options{
		Arch: linecard.DRA, N: 4, M: 2,
		Rates:   router.PaperRates(1.0 / 3),
		Horizon: 1000, Reps: 10,
		Biasing: router.Biasing{Enabled: true},
	}
	_, err := EstimateAvailability(opt)
	if err == nil {
		t.Fatal("biased availability run accepted")
	}
}
