package montecarlo

// Progress reconstructs the estimator's live view from a Checkpoint.
// Checkpoints carry the exact accumulator states at a batch boundary,
// so the point estimate, confidence interval and weight diagnostics of
// the run-so-far are all recoverable without touching the engine — the
// hook the telemetry plane uses to publish a converging estimate while
// the job runs, and deterministic by construction: the same spec
// produces the same accumulators at the same boundary regardless of
// worker count, interruption, or resume.

import "repro/internal/stats"

// Progress is the estimator state at a checkpoint's batch boundary.
type Progress struct {
	// Mode and scheduler coordinates, copied from the checkpoint.
	Mode     string `json:"mode"`
	RepsDone uint64 `json:"reps_done"`
	Batches  int    `json:"batches"`
	// Estimate is the mode's point estimate (unavailability,
	// reliability, or availability); CILo/CIHi its 95% interval and
	// RelErr the relative CI half-width — the sequential-stopping
	// measure.
	Estimate float64 `json:"estimate"`
	CILo     float64 `json:"ci_lo"`
	CIHi     float64 `json:"ci_hi"`
	RelErr   float64 `json:"rel_err"`
	// Availability is the availability reading of the estimate: 1−Û for
	// unavailability runs, the estimate itself for availability runs, 0
	// for reliability runs (a different quantity).
	Availability float64 `json:"availability,omitempty"`
	// ESS is the effective sample size of a weighted (biased) run; 0
	// when no weights were folded.
	ESS float64 `json:"ess,omitempty"`
	// Trials counts the folded replication unit: regenerative cycles
	// for unavailability, replications otherwise.
	Trials uint64 `json:"trials"`
	// Cycles/DownCycles mirror the regenerative tallies (unavailability
	// mode only).
	Cycles     uint64 `json:"cycles,omitempty"`
	DownCycles uint64 `json:"down_cycles,omitempty"`
}

// Progress reconstructs the estimator state the checkpoint captured.
// Unknown or empty modes return a zero Progress with the scheduler
// fields filled in.
func (c Checkpoint) Progress() Progress {
	p := Progress{Mode: c.Mode, RepsDone: c.RepsDone, Batches: c.Batches}
	switch c.Mode {
	case ModeUnavailability:
		if c.Ratio != nil {
			var r stats.Ratio
			r.Restore(*c.Ratio)
			p.Estimate = r.Estimate()
			p.CILo, p.CIHi = r.CI(1.96)
			p.RelErr = r.RelHalfWidth(1.96)
			p.Availability = 1 - p.Estimate
		}
		p.Cycles, p.DownCycles = c.Cycles, c.DownCycles
		p.Trials = c.Cycles
	case ModeReliability:
		biased := false
		if c.Weights != nil {
			var w stats.LogWeights
			w.Restore(*c.Weights)
			if w.N() > 0 {
				biased = true
				p.ESS = w.ESS()
			}
		}
		if biased && c.Failure != nil {
			var f stats.Welford
			f.Restore(*c.Failure)
			p.Estimate = 1 - f.Mean()
			flo, fhi := f.CI(1.96)
			p.CILo, p.CIHi = 1-fhi, 1-flo
			p.RelErr = f.RelHalfWidth(1.96)
			p.Trials = uint64(f.N())
		} else if c.Survival != nil {
			p.Estimate = c.Survival.Estimate()
			p.CILo, p.CIHi = c.Survival.Wilson(1.96)
			p.Trials = uint64(c.Survival.Trials)
			if c.Failure != nil {
				var f stats.Welford
				f.Restore(*c.Failure)
				p.RelErr = f.RelHalfWidth(1.96)
			}
		}
	case ModeAvailability:
		if c.PerRep != nil {
			var a stats.Welford
			a.Restore(*c.PerRep)
			p.Estimate = a.Mean()
			p.CILo, p.CIHi = a.CI(1.96)
			p.RelErr = a.RelHalfWidth(1.96)
			p.Availability = p.Estimate
			p.Trials = uint64(a.N())
		}
	}
	if c.Weights != nil && p.ESS == 0 {
		var w stats.LogWeights
		w.Restore(*c.Weights)
		if w.N() > 0 {
			p.ESS = w.ESS()
		}
	}
	return p
}
