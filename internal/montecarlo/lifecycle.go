package montecarlo

// Crash-safe run lifecycle: panic capture per replication (a defective
// trial is recorded with a repro bundle instead of aborting the batch),
// deterministic single-trial replay from that bundle, and batch
// checkpoints from which an interrupted run resumes bit-for-bit.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// FailedTrial is the repro bundle of one replication that panicked: the
// master seed and replication index determine the trial's random stream
// exactly, so Replay*Trial reproduces the panic deterministically.
type FailedTrial struct {
	Rep  uint64 `json:"rep"`
	Seed uint64 `json:"seed"`
	// Panic is the captured panic value, Stack the goroutine stack at
	// capture time.
	Panic string `json:"panic"`
	Stack string `json:"stack"`
}

// String implements fmt.Stringer.
func (f FailedTrial) String() string {
	return fmt.Sprintf("trial rep=%d seed=%d panicked: %s", f.Rep, f.Seed, f.Panic)
}

// TrialPanicError is returned by the Replay*Trial helpers when the
// replayed replication panics again (the expected outcome of replaying
// a genuine repro bundle).
type TrialPanicError struct {
	Trial FailedTrial
}

// Error implements error.
func (e *TrialPanicError) Error() string { return "montecarlo: " + e.Trial.String() }

// TrialStream re-derives the exact random stream replication rep
// received in a run seeded with seed: streams are split sequentially
// from the master in replication order, so the stream of rep i is the
// master state after i jumps.
func TrialStream(seed, rep uint64) *xrand.Source {
	m := xrand.New(seed)
	for i := uint64(0); i < rep; i++ {
		m.Jump()
	}
	return m.Split()
}

// runOne executes one replication under panic capture. A panic becomes
// a *FailedTrial (the batch continues); a returned error still aborts
// the run (it signals a misconfiguration, not a model defect).
func runOne[T any](opt Options, rep uint64, src *xrand.Source,
	one func(Options, uint64, *xrand.Source) (T, error)) (v T, ft *FailedTrial, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			ft = &FailedTrial{Rep: rep, Seed: opt.Seed, Panic: fmt.Sprint(rec), Stack: string(debug.Stack())}
		}
	}()
	v, err = one(opt, rep, src)
	return
}

// replayTrial re-runs a single replication on its re-derived stream.
func replayTrial[T any](opt Options, rep uint64,
	one func(Options, uint64, *xrand.Source) (T, error)) error {
	if opt.Horizon == 0 {
		opt.Horizon = 1 // regenerative runs ignore it; satisfy validation
	}
	if err := opt.Validate(); err != nil {
		return err
	}
	_, ft, err := runOne(opt, rep, TrialStream(opt.Seed, rep), one)
	if err != nil {
		return err
	}
	if ft != nil {
		return &TrialPanicError{Trial: *ft}
	}
	return nil
}

// ReplayReliabilityTrial re-runs replication rep of a reliability run
// with the given options. It returns nil when the trial completes, a
// *TrialPanicError when it panics (the repro case), or a configuration
// error.
func ReplayReliabilityTrial(opt Options, rep uint64) error {
	return replayTrial(opt, rep, reliabilityRep)
}

// ReplayAvailabilityTrial re-runs replication rep of an availability
// run.
func ReplayAvailabilityTrial(opt Options, rep uint64) error {
	return replayTrial(opt, rep, availabilityRep)
}

// ReplayUnavailabilityTrial re-runs replication rep of a regenerative
// unavailability run.
func ReplayUnavailabilityTrial(opt Options, rep uint64) error {
	return replayTrial(opt, rep, unavailabilityRep)
}

// Estimation modes recorded in checkpoints.
const (
	ModeReliability    = "reliability"
	ModeAvailability   = "availability"
	ModeUnavailability = "unavailability"
)

// Checkpoint is the exact resumable state of an estimation run at a
// batch boundary. Accumulator states capture the raw streaming
// recurrence variables and encoding/json round-trips float64 exactly,
// so a run resumed from a checkpoint folds the remaining replications
// into bit-identical accumulators — the final estimate matches an
// uninterrupted run of the same total budget exactly.
type Checkpoint struct {
	Mode     string `json:"mode"`
	Seed     uint64 `json:"seed"`
	RepsDone uint64 `json:"reps_done"`
	Batches  int    `json:"batches"`

	// Weights and Failed are shared across modes.
	Weights *stats.LogWeightsState `json:"weights,omitempty"`
	Failed  []FailedTrial          `json:"failed,omitempty"`

	// Unavailability accumulators.
	Ratio      *stats.RatioState `json:"ratio,omitempty"`
	Cycles     uint64            `json:"cycles,omitempty"`
	DownCycles uint64            `json:"down_cycles,omitempty"`

	// Reliability accumulators.
	Survival   *stats.Proportion   `json:"survival,omitempty"`
	Failure    *stats.WelfordState `json:"failure,omitempty"`
	TTF        *stats.WelfordState `json:"ttf,omitempty"`
	TTFSamples []float64           `json:"ttf_samples,omitempty"`

	// Availability accumulator.
	PerRep *stats.WelfordState `json:"per_rep,omitempty"`
}

// WriteFile persists the checkpoint atomically (write to a temp file in
// the same directory, then rename), so a crash — even kill -9 — during
// the write never corrupts an existing checkpoint.
func (c Checkpoint) WriteFile(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("montecarlo: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return Checkpoint{}, fmt.Errorf("montecarlo: %w", err)
	}
	if c.Mode == "" {
		return Checkpoint{}, fmt.Errorf("montecarlo: checkpoint %s has no mode", path)
	}
	return c, nil
}
