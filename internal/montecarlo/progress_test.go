package montecarlo

import (
	"testing"

	"repro/internal/linecard"
	"repro/internal/router"
)

// TestProgressMatchesFinalResult: the Progress reconstructed from the
// last checkpoint of a run must agree exactly with the result the
// engine returned — same accumulators, same boundary.
func TestProgressMatchesFinalResult(t *testing.T) {
	t.Run("unavailability", func(t *testing.T) {
		var last Checkpoint
		opt := Options{
			Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(1.0 / 3),
			Reps: 40, Seed: 7, Batch: 10, CyclesPerRep: 5,
			Biasing: router.Biasing{Enabled: true, Delta: 0.3},
			OnBatch: func(cp Checkpoint) { last = cp },
		}
		res, err := EstimateUnavailability(opt)
		if err != nil {
			t.Fatalf("EstimateUnavailability: %v", err)
		}
		p := last.Progress()
		if p.Mode != ModeUnavailability || p.RepsDone != 40 || p.Batches != 4 {
			t.Fatalf("scheduler fields wrong: %+v", p)
		}
		if p.Estimate != res.Estimate() {
			t.Fatalf("estimate %g != result %g", p.Estimate, res.Estimate())
		}
		lo, hi := res.CI()
		if p.CILo != lo || p.CIHi != hi {
			t.Fatalf("CI [%g,%g] != result [%g,%g]", p.CILo, p.CIHi, lo, hi)
		}
		if p.RelErr != res.RelHalfWidth() {
			t.Fatalf("rel err %g != result %g", p.RelErr, res.RelHalfWidth())
		}
		if p.Availability != 1-res.Estimate() {
			t.Fatalf("availability %g != %g", p.Availability, 1-res.Estimate())
		}
		if p.ESS != res.Weights.ESS() {
			t.Fatalf("ESS %g != result %g", p.ESS, res.Weights.ESS())
		}
		if p.Cycles != res.Cycles || p.DownCycles != res.DownCycles || p.Trials != res.Cycles {
			t.Fatalf("cycle tallies wrong: %+v vs %d/%d", p, res.Cycles, res.DownCycles)
		}
	})

	t.Run("reliability", func(t *testing.T) {
		var last Checkpoint
		opt := Options{
			Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(0),
			Horizon: 40000, Reps: 60, Seed: 3, Batch: 20,
			OnBatch: func(cp Checkpoint) { last = cp },
		}
		res, err := EstimateReliability(opt)
		if err != nil {
			t.Fatalf("EstimateReliability: %v", err)
		}
		p := last.Progress()
		if p.Mode != ModeReliability || p.Estimate != res.Estimate() {
			t.Fatalf("estimate %g != result %g (%+v)", p.Estimate, res.Estimate(), p)
		}
		lo, hi := res.CI()
		if p.CILo != lo || p.CIHi != hi {
			t.Fatalf("CI [%g,%g] != result [%g,%g]", p.CILo, p.CIHi, lo, hi)
		}
		if p.Trials != 60 {
			t.Fatalf("trials %d, want 60", p.Trials)
		}
		if p.Availability != 0 {
			t.Fatal("reliability progress must not claim an availability")
		}
	})

	t.Run("availability", func(t *testing.T) {
		var last Checkpoint
		opt := Options{
			Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(1.0 / 3),
			Horizon: 1000, Reps: 30, Seed: 5, Batch: 10,
			OnBatch: func(cp Checkpoint) { last = cp },
		}
		res, err := EstimateAvailability(opt)
		if err != nil {
			t.Fatalf("EstimateAvailability: %v", err)
		}
		p := last.Progress()
		if p.Mode != ModeAvailability || p.Estimate != res.Estimate() {
			t.Fatalf("estimate %g != result %g", p.Estimate, res.Estimate())
		}
		if p.Availability != res.Estimate() {
			t.Fatalf("availability %g != estimate %g", p.Availability, res.Estimate())
		}
		if p.Trials != 30 {
			t.Fatalf("trials %d, want 30", p.Trials)
		}
	})
}

// TestProgressEmptyCheckpoint: a checkpoint with no accumulators (or an
// unknown mode) degrades to the scheduler fields.
func TestProgressEmptyCheckpoint(t *testing.T) {
	p := Checkpoint{Mode: "weird", RepsDone: 5, Batches: 1}.Progress()
	if p.Mode != "weird" || p.RepsDone != 5 || p.Estimate != 0 {
		t.Fatalf("unexpected: %+v", p)
	}
	p = Checkpoint{Mode: ModeUnavailability}.Progress()
	if p.Estimate != 0 || p.Trials != 0 {
		t.Fatalf("empty unavailability checkpoint: %+v", p)
	}
}
