package montecarlo

import (
	"testing"

	"repro/internal/linecard"
	"repro/internal/metrics"
	"repro/internal/router"
)

// TestRaceSoakParallelEstimators drives every parallel path of the
// engine — the worker pool, the batch scheduler, biased replications and
// a shared metrics registry hammered from all workers at once — with
// enough work to give the race detector something to chew on. It runs in
// short mode too (`make race` uses -short): the point is data-race
// coverage, not statistical power.
func TestRaceSoakParallelEstimators(t *testing.T) {
	reg := metrics.NewRegistry()

	rel := Options{
		Arch: linecard.DRA, N: 6, M: 3,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 160, Seed: 3,
		Workers: 8, Metrics: reg,
		Biasing: router.Biasing{Enabled: true, Delta: 0.6},
	}
	if _, err := EstimateReliability(rel); err != nil {
		t.Fatal(err)
	}

	av := Options{
		Arch: linecard.BDR, N: 4, M: 4,
		Rates:   router.PaperRates(1.0 / 3),
		Horizon: 100000, Reps: 24, Seed: 4,
		Workers: 8, Metrics: reg,
	}
	if _, err := EstimateAvailability(av); err != nil {
		t.Fatal(err)
	}

	// Sequential stopping: several batches race through the pool while
	// the fold and stopping rule run on the driver goroutine.
	uav := Options{
		Arch: linecard.DRA, N: 4, M: 2,
		Rates: router.PaperRates(1.0 / 3),
		Reps:  400, Seed: 5,
		Workers: 8, Metrics: reg,
		Biasing:      router.Biasing{Enabled: true, Delta: 0.3},
		TargetRelErr: 0.4,
		Batch:        64,
		CyclesPerRep: 10,
	}
	if _, err := EstimateUnavailability(uav); err != nil {
		t.Fatal(err)
	}
}
