package montecarlo

import (
	"os"
	"testing"

	"repro/internal/linecard"
	"repro/internal/router"
)

// TestTuningSweep is a development harness, not a regression test: set
// MC_TUNE=1 to print the relative error reached by 2·10^5 cycles for a
// grid of biasing parameters.
func TestTuningSweep(t *testing.T) {
	if os.Getenv("MC_TUNE") == "" {
		t.Skip("set MC_TUNE=1 to run the tuning sweep")
	}
	for _, delta := range []float64{0.3, 0.35, 0.4, 0.45} {
		opt := Options{
			Arch:         linecard.DRA,
			N:            9,
			M:            4,
			Rates:        router.PaperRates(1.0 / 3),
			Reps:         2_000,
			Seed:         5,
			Workers:      8,
			Biasing:      router.Biasing{Enabled: true, Delta: delta},
			CyclesPerRep: 100,
		}
		res, err := EstimateUnavailability(opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("delta=%.2f: est=%.4g relerr=%.3f down=%d ess=%.0f logW=[%.1f, %.1f]",
			delta, res.Estimate(), res.RelHalfWidth(), res.DownCycles, res.Weights.ESS(), res.Weights.Min, res.Weights.Max)
	}
}
