package montecarlo

import (
	"math"
	"testing"

	"repro/internal/linecard"
	"repro/internal/models"
	"repro/internal/router"
)

func TestOptionsValidate(t *testing.T) {
	ok := Options{Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(0), Horizon: 1000, Reps: 10}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{N: 1, M: 1, Horizon: 1, Reps: 1},
		{N: 4, M: 5, Horizon: 1, Reps: 1},
		{N: 4, M: 2, Horizon: 0, Reps: 1},
		{N: 4, M: 2, Horizon: 1, Reps: 0},
		{N: 4, M: 2, Horizon: 1, Reps: 1, Rates: router.FaultRates{PDLU: -1}},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReliabilityRejectsRepair(t *testing.T) {
	opt := Options{Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(1.0 / 3), Horizon: 1000, Reps: 5}
	if _, err := EstimateReliability(opt); err == nil {
		t.Fatal("repair accepted in reliability run")
	}
}

func TestAvailabilityNeedsRepair(t *testing.T) {
	opt := Options{Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(0), Horizon: 1000, Reps: 5}
	if _, err := EstimateAvailability(opt); err == nil {
		t.Fatal("availability without repair accepted")
	}
}

func TestReproducibility(t *testing.T) {
	opt := Options{Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(0), Horizon: 40000, Reps: 50, Seed: 5}
	a, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != b.Estimate() || a.TTF.Mean() != b.TTF.Mean() {
		t.Fatal("same seed produced different estimates")
	}
}

// TestParallelWorkersBitIdentical: the worker count must not change the
// estimate — replications are seeded per index and aggregated in order.
func TestParallelWorkersBitIdentical(t *testing.T) {
	base := Options{Arch: linecard.DRA, N: 6, M: 3, Rates: router.PaperRates(0), Horizon: 40000, Reps: 300, Seed: 17}
	seq, err := EstimateReliability(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = 8
	got, err := EstimateReliability(par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Estimate() != got.Estimate() || seq.TTF.Mean() != got.TTF.Mean() || seq.TTF.N() != got.TTF.N() {
		t.Fatalf("parallel result diverged: %v/%v vs %v/%v",
			seq.Estimate(), seq.TTF.Mean(), got.Estimate(), got.TTF.Mean())
	}

	// Availability too.
	av := base
	av.Rates = router.PaperRates(1.0 / 3)
	av.Horizon = 200000
	av.Reps = 40
	seqA, err := EstimateAvailability(av)
	if err != nil {
		t.Fatal(err)
	}
	av.Workers = 4
	parA, err := EstimateAvailability(av)
	if err != nil {
		t.Fatal(err)
	}
	if seqA.Estimate() != parA.Estimate() {
		t.Fatalf("parallel availability diverged: %v vs %v", seqA.Estimate(), parA.Estimate())
	}
}

// TestTargetLCSymmetry: LCs sharing a protocol class are statistically
// interchangeable — estimates for LC 0 and LC 1 (both Ethernet in the
// M=3 layout) must agree within their confidence bands.
func TestTargetLCSymmetry(t *testing.T) {
	base := Options{Arch: linecard.DRA, N: 6, M: 3, Rates: router.PaperRates(0), Horizon: 40000, Reps: 1500, Seed: 21}
	r0, err := EstimateReliability(base)
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.TargetLC = 1
	other.Seed = 22 // independent stream
	r1, err := EstimateReliability(other)
	if err != nil {
		t.Fatal(err)
	}
	lo0, hi0 := r0.CI()
	lo1, hi1 := r1.CI()
	if hi0 < lo1 || hi1 < lo0 {
		t.Fatalf("LC0 [%.4f, %.4f] and LC1 [%.4f, %.4f] CIs disjoint", lo0, hi0, lo1, hi1)
	}
}

func TestTTFSamplesConsistentWithCounters(t *testing.T) {
	opt := Options{Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(0), Horizon: 200000, Reps: 300, Seed: 13}
	res, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TTFSamples) != res.TTF.N() {
		t.Fatalf("samples %d vs Welford N %d", len(res.TTFSamples), res.TTF.N())
	}
	if len(res.TTFSamples)+res.Survival.Successes != res.Survival.Trials {
		t.Fatal("failures + survivals != trials")
	}
	sum := 0.0
	for _, v := range res.TTFSamples {
		if v <= 0 || v > opt.Horizon {
			t.Fatalf("sample %g outside (0, horizon]", v)
		}
		sum += v
	}
	if n := len(res.TTFSamples); n > 0 {
		if mean := sum / float64(n); math.Abs(mean-res.TTF.Mean()) > 1e-9 {
			t.Fatalf("sample mean %g vs Welford %g", mean, res.TTF.Mean())
		}
	}
}

func TestTargetLCValidation(t *testing.T) {
	opt := Options{Arch: linecard.DRA, N: 4, M: 2, Rates: router.PaperRates(0), Horizon: 1, Reps: 1, TargetLC: 9}
	if opt.Validate() == nil {
		t.Fatal("out-of-range target accepted")
	}
}

// TestBDRReliabilityMatchesClosedForm: the BDR simulator must reproduce
// e^{-λ_LC·t} — no architectural subtleties involved.
func TestBDRReliabilityMatchesClosedForm(t *testing.T) {
	opt := Options{Arch: linecard.BDR, N: 4, M: 4, Rates: router.PaperRates(0), Horizon: 40000, Reps: 4000, Seed: 1}
	res, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2e-5 * 40000)
	lo, hi := res.CI()
	if want < lo-0.01 || want > hi+0.01 {
		t.Fatalf("BDR MC R = %.4f [%.4f, %.4f], closed form %.4f", res.Estimate(), lo, hi, want)
	}
}

// TestDRAReliabilityBracketsAnalytic: the paper's chain excludes LC_out
// from the covering pools (N−2 PI coverers) while the executable
// architecture has N−1, and it double-counts bus-controller failures into
// both pools; the analytic model is therefore conservative. The MC
// estimate must land at or above the paper's model and close to the
// pool-shifted model (N+1).
func TestDRAReliabilityBracketsAnalytic(t *testing.T) {
	for _, nm := range [][2]int{{3, 2}, {6, 3}, {9, 4}} {
		n, m := nm[0], nm[1]
		opt := Options{Arch: linecard.DRA, N: n, M: m, Rates: router.PaperRates(0), Horizon: 40000, Reps: 3000, Seed: 9}
		res, err := EstimateReliability(opt)
		if err != nil {
			t.Fatal(err)
		}
		paper, err := models.DRAReliability(models.PaperParams(n, m))
		if err != nil {
			t.Fatal(err)
		}
		shifted, err := models.DRAReliability(models.PaperParams(n+1, m))
		if err != nil {
			t.Fatal(err)
		}
		mc := res.Estimate()
		lower := paper.ReliabilityAt(40000)
		anchor := shifted.ReliabilityAt(40000)
		if mc < lower-0.02 {
			t.Fatalf("N=%d M=%d: MC %.4f fell below the conservative analytic %.4f", n, m, mc, lower)
		}
		if math.Abs(mc-anchor) > 0.03 {
			t.Fatalf("N=%d M=%d: MC %.4f vs pool-shifted analytic %.4f", n, m, mc, anchor)
		}
	}
}

// TestDRATTFOrdering: with coverage, the observed mean time to service
// failure must exceed the BDR MTTF of 50 000 h.
func TestDRATTFOrdering(t *testing.T) {
	opt := Options{Arch: linecard.DRA, N: 6, M: 3, Rates: router.PaperRates(0), Horizon: 400000, Reps: 600, Seed: 4}
	res, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TTF.N() < 100 {
		t.Fatalf("too few failures observed: %d", res.TTF.N())
	}
	if res.TTF.Mean() < 50000 {
		t.Fatalf("DRA mean TTF %.0f h below BDR MTTF", res.TTF.Mean())
	}
}

// TestBDRAvailabilityMatchesClosedForm: time-averaged availability against
// μ/(λ+μ).
func TestBDRAvailabilityMatchesClosedForm(t *testing.T) {
	rates := router.PaperRates(1.0 / 3)
	opt := Options{Arch: linecard.BDR, N: 4, M: 4, Rates: rates, Horizon: 5e6, Reps: 40, Seed: 2}
	res, err := EstimateAvailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0 / 3) / (2e-5 + 1.0/3)
	lo, hi := res.CI()
	if want < lo-5e-5 || want > hi+5e-5 {
		t.Fatalf("BDR MC A = %.6f [%.6f, %.6f], closed form %.6f", res.Estimate(), lo, hi, want)
	}
}

// TestBDRIntervalAvailabilityMatchesAnalytic: at short horizons the
// steady state has not been reached; the per-replication time-averaged
// availability must match the analytic interval availability, not the
// steady-state value.
func TestBDRIntervalAvailabilityMatchesAnalytic(t *testing.T) {
	rates := router.PaperRates(1.0 / 3)
	const horizon = 50000.0
	opt := Options{Arch: linecard.BDR, N: 4, M: 4, Rates: rates, Horizon: horizon, Reps: 3000, Seed: 8}
	res, err := EstimateAvailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	p := models.PaperParams(4, 4)
	p.Mu = 1.0 / 3
	m, err := models.BDRAvailability(p)
	if err != nil {
		t.Fatal(err)
	}
	want := m.IntervalAvailability(horizon, 128)
	lo, hi := res.CI()
	if want < lo-2e-5 || want > hi+2e-5 {
		t.Fatalf("MC interval availability %.8f [%.8f, %.8f] vs analytic %.8f",
			res.Estimate(), lo, hi, want)
	}
	// Sanity: the interval value sits above the steady state at this
	// horizon (system starts perfect).
	if want <= m.Availability() {
		t.Fatal("interval availability not above steady state")
	}
}

// TestDRAAvailabilityExceedsBDR: the headline availability ordering holds
// in simulation.
func TestDRAAvailabilityExceedsBDR(t *testing.T) {
	rates := router.PaperRates(1.0 / 3)
	dra, err := EstimateAvailability(Options{Arch: linecard.DRA, N: 6, M: 3, Rates: rates, Horizon: 2e6, Reps: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bdrClosed := (1.0 / 3) / (2e-5 + 1.0/3)
	if dra.Estimate() <= bdrClosed {
		t.Fatalf("DRA MC availability %.8f not above BDR %.8f", dra.Estimate(), bdrClosed)
	}
}
