package montecarlo

import (
	"encoding/json"
	"testing"

	"repro/internal/linecard"
	"repro/internal/router"
)

// The fleet contract: a fixed-count run carved into shards, each shard
// run independently (possibly on another machine, possibly re-run after
// a kill), JSON round-tripped over the wire, and merged in replication
// order must be bit-identical to the standalone estimator. These tests
// pin that for all three modes, including uneven shard splits, shuffled
// merge order, and the wire encoding.

// wireTrip round-trips a shard result through its JSON encoding, as the
// coordinator/worker HTTP hop does.
func wireTrip(t *testing.T, s ShardResult) ShardResult {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out ShardResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// shardBounds carves [0, reps) into parts contiguous uneven ranges.
func shardBounds(reps, parts int) [][2]uint64 {
	out := make([][2]uint64, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		n := reps / parts
		if i < reps%parts {
			n++
		}
		out = append(out, [2]uint64{uint64(lo), uint64(lo + n)})
		lo += n
	}
	return out
}

func TestReliabilityShardMergeBitIdentical(t *testing.T) {
	opt := Options{
		Arch: linecard.DRA, N: 6, M: 3,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 240, Seed: 17,
	}
	want, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	var parts []ShardResult
	for _, b := range shardBounds(opt.Reps, 3) {
		s, err := RunReliabilityShard(opt, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, wireTrip(t, s))
	}
	// Merge order must not matter: shards arrive in completion order.
	parts[0], parts[2] = parts[2], parts[0]
	got, err := MergeReliabilityShards(opt, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != want.Estimate() {
		t.Fatalf("estimate diverged: %v vs %v", got.Estimate(), want.Estimate())
	}
	gl, gh := got.CI()
	wl, wh := want.CI()
	if gl != wl || gh != wh {
		t.Fatalf("CI diverged: [%v, %v] vs [%v, %v]", gl, gh, wl, wh)
	}
	if got.TTF.Mean() != want.TTF.Mean() || got.TTF.N() != want.TTF.N() {
		t.Fatalf("TTF diverged: mean %v n %d vs mean %v n %d",
			got.TTF.Mean(), got.TTF.N(), want.TTF.Mean(), want.TTF.N())
	}
	if len(got.TTFSamples) != len(want.TTFSamples) {
		t.Fatalf("TTF sample count diverged: %d vs %d", len(got.TTFSamples), len(want.TTFSamples))
	}
	for i := range got.TTFSamples {
		if got.TTFSamples[i] != want.TTFSamples[i] {
			t.Fatalf("TTF sample %d diverged: %v vs %v", i, got.TTFSamples[i], want.TTFSamples[i])
		}
	}
	if got.StopReason != StopFixed || got.Batches != want.Batches {
		t.Fatalf("scheduler fields diverged: %s/%d vs %s/%d",
			got.StopReason, got.Batches, want.StopReason, want.Batches)
	}
}

func TestBiasedReliabilityShardMergeBitIdentical(t *testing.T) {
	opt := Options{
		Arch: linecard.DRA, N: 6, M: 3,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 240, Seed: 23,
		Biasing: router.Biasing{Enabled: true, Delta: 0.6},
	}
	want, err := EstimateReliability(opt)
	if err != nil {
		t.Fatal(err)
	}
	var parts []ShardResult
	for _, b := range shardBounds(opt.Reps, 4) {
		s, err := RunReliabilityShard(opt, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, wireTrip(t, s))
	}
	got, err := MergeReliabilityShards(opt, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != want.Estimate() ||
		got.Failure.Mean() != want.Failure.Mean() ||
		got.Weights.Max != want.Weights.Max ||
		got.Weights.Min != want.Weights.Min {
		t.Fatalf("biased merge diverged: est %v/%v failMean %v/%v",
			got.Estimate(), want.Estimate(), got.Failure.Mean(), want.Failure.Mean())
	}
}

func TestAvailabilityShardMergeBitIdentical(t *testing.T) {
	opt := Options{
		Arch: linecard.DRA, N: 4, M: 2,
		Rates:   router.PaperRates(1.0 / 3),
		Horizon: 200000, Reps: 32, Seed: 29,
	}
	want, err := EstimateAvailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	var parts []ShardResult
	for _, b := range shardBounds(opt.Reps, 3) {
		s, err := RunAvailabilityShard(opt, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, wireTrip(t, s))
	}
	got, err := MergeAvailabilityShards(opt, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != want.Estimate() {
		t.Fatalf("estimate diverged: %v vs %v", got.Estimate(), want.Estimate())
	}
	gl, gh := got.CI()
	wl, wh := want.CI()
	if gl != wl || gh != wh {
		t.Fatalf("CI diverged: [%v, %v] vs [%v, %v]", gl, gh, wl, wh)
	}
}

func TestUnavailabilityShardMergeBitIdentical(t *testing.T) {
	opt := Options{
		Arch: linecard.DRA, N: 4, M: 2,
		Rates: router.PaperRates(1.0 / 3),
		Reps:  60, Seed: 31,
		Biasing:      router.Biasing{Enabled: true, Delta: 0.3},
		CyclesPerRep: 20,
	}
	want, err := EstimateUnavailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	var parts []ShardResult
	for _, b := range shardBounds(opt.Reps, 4) {
		s, err := RunUnavailabilityShard(opt, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, wireTrip(t, s))
	}
	parts[1], parts[3] = parts[3], parts[1]
	got, err := MergeUnavailabilityShards(opt, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != want.Estimate() ||
		got.Cycles != want.Cycles || got.DownCycles != want.DownCycles ||
		got.Weights.Max != want.Weights.Max || got.Weights.Min != want.Weights.Min {
		t.Fatalf("merge diverged: est %v/%v cycles %d/%d down %d/%d",
			got.Estimate(), want.Estimate(), got.Cycles, want.Cycles,
			got.DownCycles, want.DownCycles)
	}
	gl, gh := got.CI()
	wl, wh := want.CI()
	if gl != wl || gh != wh {
		t.Fatalf("CI diverged: [%v, %v] vs [%v, %v]", gl, gh, wl, wh)
	}
}

// A shard re-run after a kill must reproduce the same outcomes: the
// shard is a pure function of (options, range).
func TestShardRerunDeterministic(t *testing.T) {
	opt := Options{
		Arch: linecard.DRA, N: 6, M: 3,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 120, Seed: 41,
	}
	a, err := RunReliabilityShard(opt, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReliabilityShard(opt, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	da, _ := json.Marshal(a)
	db, _ := json.Marshal(b)
	if string(da) != string(db) {
		t.Fatalf("shard re-run diverged:\n%s\nvs\n%s", da, db)
	}
}

func TestShardValidation(t *testing.T) {
	opt := Options{
		Arch: linecard.DRA, N: 6, M: 3,
		Rates:   router.PaperRates(0),
		Horizon: 100, Reps: 10, Seed: 1,
	}
	if _, err := RunReliabilityShard(opt, 5, 5); err == nil {
		t.Fatal("empty shard accepted")
	}
	if _, err := RunReliabilityShard(opt, 0, 11); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	seq := opt
	seq.TargetRelErr = 0.1
	if _, err := RunReliabilityShard(seq, 0, 5); err == nil {
		t.Fatal("sequential-stopping shard accepted")
	}
	s0, err := RunReliabilityShard(opt, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeReliabilityShards(opt, []ShardResult{s0}); err == nil {
		t.Fatal("gap-leaving merge accepted")
	}
	bad := s0
	bad.Seed++
	s5, err := RunReliabilityShard(opt, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeReliabilityShards(opt, []ShardResult{bad, s5}); err == nil {
		t.Fatal("seed-mismatched merge accepted")
	}
}
