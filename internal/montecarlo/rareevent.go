package montecarlo

// Rare-event steady-state unavailability by regenerative simulation with
// importance sampling.
//
// The router's dependability process is a CTMC whose repair completions
// restore every failed unit at once, so each repair completion (and t = 0)
// is a regeneration point: the process restarts from the all-up state with
// fresh exponential lifetimes. Steady-state unavailability therefore has
// the regenerative ratio form
//
//	U = E[D] / E[τ]
//
// with D the target LC's downtime and τ the length of one cycle
// (all-up → first failure → repair completion). Under balanced failure
// biasing (router.Biasing) the cycle is simulated under a measure Q that
// makes multi-failure busy periods common, and each cycle carries its
// likelihood ratio W = dP/dQ from the injector, giving the unbiased
// weighted ratio estimator
//
//	Û = Σ W_c·D_c / Σ W_c·τ_c.
//
// Crucially the weight applies per cycle — one busy period, a handful of
// biased lifetime segments — so W stays bounded and the estimator's
// variance collapses precisely where crude Monte Carlo observes zero down
// cycles. This is the standard construction for dependability CTMCs
// (Goyal et al.; Shahabuddin's balanced failure biasing) and the engine
// behind experiment E5b.

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// UnavailabilityResult is the outcome of EstimateUnavailability.
type UnavailabilityResult struct {
	// Ratio accumulates the weighted per-cycle pairs (W·D, W·τ); its
	// estimate is the steady-state unavailability with the delta-method
	// CI of regenerative estimators.
	Ratio stats.Ratio
	// Weights tallies the per-cycle likelihood ratios (extremes, ESS).
	// For a crude run every weight is exactly 1.
	Weights stats.LogWeights
	// Cycles counts simulated regenerative cycles; DownCycles those in
	// which the target LC lost service at all — the estimator's signal.
	Cycles     uint64
	DownCycles uint64
	// Batches and StopReason report the scheduler outcome.
	Batches    int
	StopReason string
	// Failed lists replications that panicked (repro bundles; their
	// cycles are excluded from the estimator).
	Failed []FailedTrial
}

// Estimate returns the steady-state unavailability point estimate.
func (u UnavailabilityResult) Estimate() float64 { return u.Ratio.Estimate() }

// CI returns the delta-method 95% interval.
func (u UnavailabilityResult) CI() (lo, hi float64) { return u.Ratio.CI(1.96) }

// RelHalfWidth returns the relative 95% CI half-width.
func (u UnavailabilityResult) RelHalfWidth() float64 { return u.Ratio.RelHalfWidth(1.96) }

// Availability returns 1 − Û.
func (u UnavailabilityResult) Availability() float64 { return 1 - u.Estimate() }

// cycleOut is one regenerative cycle's outcome. down is the conditional
// expected downtime rather than the sampled one: once the target LC goes
// down it stays down until the repair completes (failures only accumulate
// within a busy period and the repair restores everything at once), and
// the repair timer is exponential, so the remaining downtime at the
// moment of going down is Exp(μ) with conditional mean exactly 1/μ,
// independent of the trajectory so far. Substituting that mean
// (Rao-Blackwellisation) removes the downtime's sampling noise from the
// numerator — an exact, model-guaranteed variance reduction.
type cycleOut struct {
	logW     float64 // log likelihood ratio accumulated over the cycle
	down     float64 // conditional expected target-LC downtime (1{down}/μ)
	wentDown bool
	tau      float64 // cycle length
}

// foldCycle folds one regenerative cycle into the accumulators. Shared
// by EstimateUnavailability and the shard merge
// (MergeUnavailabilityShards) so a merged fleet-sharded estimate is
// bit-identical to a standalone run. The counters may come from a nil
// registry (they are nil-safe).
func (u *UnavailabilityResult) foldCycle(c cycleOut, cyclesCtr, downCtr *metrics.Counter) {
	w := math.Exp(c.logW)
	u.Ratio.Add(w*c.down, w*c.tau)
	u.Weights.Add(c.logW)
	u.Cycles++
	cyclesCtr.Inc()
	if c.wentDown {
		u.DownCycles++
		downCtr.Inc()
	}
}

// cyclesPerRep resolves Options.CyclesPerRep.
func (o Options) cyclesPerRep() int {
	if o.CyclesPerRep == 0 {
		return DefaultCyclesPerRep
	}
	return o.CyclesPerRep
}

// EstimateUnavailability estimates the target LC's steady-state
// unavailability by regenerative simulation. Each replication reuses one
// router for Options.CyclesPerRep repair cycles (construction is
// amortised); Options.Reps replications bound the budget, and
// Options.TargetRelErr runs batches until the ratio estimate's relative
// CI half-width reaches the target. With Options.Biasing the busy periods
// are importance-sampled and de-biased per cycle; without it the
// estimator degrades gracefully to crude regenerative simulation (useful
// exactly to demonstrate why biasing is needed: in the paper's 9^7–9^8
// band a crude run of the same budget observes zero down cycles).
//
// Options.Horizon is ignored — the replication unit is the repair cycle.
func EstimateUnavailability(opt Options) (UnavailabilityResult, error) {
	if opt.Horizon == 0 {
		opt.Horizon = 1 // unused; satisfy shared validation
	}
	if err := opt.Validate(); err != nil {
		return UnavailabilityResult{}, err
	}
	if opt.Rates.Repair <= 0 {
		return UnavailabilityResult{}, fmt.Errorf("montecarlo: regenerative unavailability needs repair (cycles end at repair completions)")
	}
	res := UnavailabilityResult{}
	if cp := opt.Resume; cp != nil {
		if cp.Ratio != nil {
			res.Ratio.Restore(*cp.Ratio)
		}
		if cp.Weights != nil {
			res.Weights.Restore(*cp.Weights)
		}
		res.Cycles, res.DownCycles = cp.Cycles, cp.DownCycles
	}
	cyclesCtr := opt.Metrics.Counter("montecarlo_cycles_total", "Regenerative repair cycles simulated.")
	downCtr := opt.Metrics.Counter("montecarlo_down_cycles_total", "Cycles in which the target LC lost service.")
	fold := func(cs []cycleOut) {
		for _, c := range cs {
			res.foldCycle(c, cyclesCtr, downCtr)
		}
	}
	snap := func() Checkpoint {
		ra, w := res.Ratio.State(), res.Weights.State()
		return Checkpoint{Ratio: &ra, Weights: &w, Cycles: res.Cycles, DownCycles: res.DownCycles}
	}
	batches, reason, failed, err := drive(opt, ModeUnavailability, unavailabilityRep, fold,
		func() float64 { return res.Ratio.RelHalfWidth(1.96) }, snap)
	if err != nil {
		return res, err
	}
	res.Batches, res.StopReason, res.Failed = batches, reason, failed
	lo, hi := res.CI()
	publishCI(opt, lo, hi)
	publishWeights(opt, &res.Weights)
	return res, nil
}

// unavailabilityRep simulates CyclesPerRep regenerative cycles on one
// router and returns their outcomes in cycle order.
func unavailabilityRep(opt Options, rep uint64, src *xrand.Source) ([]cycleOut, error) {
	r, inj, err := build(opt, rep, src)
	if err != nil {
		return nil, err
	}
	inj.Start()
	k := r.Kernel()
	want := opt.cyclesPerRep()
	out := make([]cycleOut, 0, want)

	prevLR := 0.0
	cycleStart := k.Now()
	wentDown := false
	repairs := inj.Repairs
	for len(out) < want {
		if !k.Step() {
			// No events pending: cannot happen with Repair > 0, but do
			// not spin if it somehow does.
			break
		}
		now := k.Now()
		if !wentDown && !r.CanDeliverCached(opt.TargetLC) {
			// Once down, the LC stays down until the repair: only the
			// fact of going down matters (see cycleOut).
			wentDown = true
		}
		if inj.Repairs != repairs {
			// A repair completion: regeneration point, the cycle closes.
			repairs = inj.Repairs
			lr := inj.CheckpointLR()
			c := cycleOut{
				logW:     lr - prevLR,
				wentDown: wentDown,
				tau:      float64(now - cycleStart),
			}
			if wentDown {
				c.down = 1 / opt.Rates.Repair
			}
			out = append(out, c)
			prevLR = lr
			cycleStart = now
			wentDown = false
		}
	}
	return out, nil
}
