// Package montecarlo estimates the dependability of the executable router
// model by replicated fault-injection simulation, providing an independent
// cross-check of the analytical Markov models: the simulator knows nothing
// of the chains — it injects per-component exponential lifetimes into the
// full router and watches the service predicate — so agreement between the
// two is evidence that both encode the architecture the same way.
package montecarlo

import (
	"fmt"

	"repro/internal/linecard"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures an estimation run.
type Options struct {
	Arch linecard.Arch
	// N is the LC count; M the number of LCs sharing LC 0's protocol.
	N, M int
	// Rates are the component failure rates (and repair rate for
	// availability runs).
	Rates router.FaultRates
	// Horizon is the simulated time per replication (hours).
	Horizon float64
	// Reps is the number of independent replications.
	Reps int
	// Seed makes the whole estimate reproducible; replication r uses
	// Seed + r.
	Seed uint64
	// Workers fans replications out over goroutines (each replication
	// owns a private router, so they share nothing). 0 or 1 runs
	// sequentially. Results are aggregated in replication order, so the
	// estimate is bit-identical regardless of worker count.
	Workers int
	// TargetLC selects the linecard under analysis (the paper's LCUA);
	// default 0.
	TargetLC int
	// Metrics, when non-nil, receives live progress: every replication's
	// router and kernel are instrumented against it (counters are
	// atomic, so concurrent workers share it safely), and the estimators
	// publish montecarlo_trials_total and montecarlo_ci_halfwidth for
	// convergence watching over /metrics.
	Metrics *metrics.Registry
}

// Validate rejects nonsensical options.
func (o Options) Validate() error {
	if o.N < 2 || o.M < 1 || o.M > o.N {
		return fmt.Errorf("montecarlo: bad N=%d M=%d", o.N, o.M)
	}
	if o.Horizon <= 0 {
		return fmt.Errorf("montecarlo: horizon must be positive")
	}
	if o.Reps < 1 {
		return fmt.Errorf("montecarlo: need at least one replication")
	}
	if o.TargetLC < 0 || o.TargetLC >= o.N {
		return fmt.Errorf("montecarlo: target LC %d outside [0, N)", o.TargetLC)
	}
	return o.Rates.Validate()
}

// ReliabilityResult is the outcome of EstimateReliability.
type ReliabilityResult struct {
	Horizon float64
	// Survival estimates R(Horizon) for LC 0: the fraction of
	// replications in which its packet service never failed.
	Survival stats.Proportion
	// TTF accumulates observed times to first service failure (only for
	// replications that failed within the horizon).
	TTF stats.Welford
	// TTFSamples holds the raw failure times, in replication order, for
	// histograms and quantiles.
	TTFSamples []float64
}

// Estimate returns the reliability point estimate.
func (r ReliabilityResult) Estimate() float64 { return r.Survival.Estimate() }

// CI returns the Wilson 95% interval.
func (r ReliabilityResult) CI() (lo, hi float64) { return r.Survival.Wilson(1.96) }

// EstimateReliability runs Reps replications without repair and reports
// the fraction in which LC 0's service survived the horizon.
func EstimateReliability(opt Options) (ReliabilityResult, error) {
	if err := opt.Validate(); err != nil {
		return ReliabilityResult{}, err
	}
	if opt.Rates.Repair != 0 {
		return ReliabilityResult{}, fmt.Errorf("montecarlo: reliability runs must not repair")
	}
	res := ReliabilityResult{Horizon: opt.Horizon}
	outcomes, err := runReps(opt, reliabilityRep)
	if err != nil {
		return res, err
	}
	for _, failedAt := range outcomes {
		if failedAt >= 0 && failedAt <= opt.Horizon {
			res.Survival.Add(false)
			res.TTF.Add(failedAt)
			res.TTFSamples = append(res.TTFSamples, failedAt)
		} else {
			res.Survival.Add(true)
		}
	}
	lo, hi := res.CI()
	publishCI(opt, lo, hi)
	return res, nil
}

// publishCI records the 95% confidence-interval half-width, the
// convergence measure an operator watches on a long estimation run.
func publishCI(opt Options, lo, hi float64) {
	opt.Metrics.Gauge("montecarlo_ci_halfwidth", "Half-width of the estimator's 95% confidence interval.").
		Set((hi - lo) / 2)
}

// reliabilityRep runs one replication and returns the time of the first
// service failure of LC 0, or -1 if it survived the horizon.
func reliabilityRep(opt Options, rep uint64) (float64, error) {
	r, inj, err := build(opt, rep)
	if err != nil {
		return 0, err
	}
	inj.Start()
	k := r.Kernel()
	for k.Now() < sim.Time(opt.Horizon) {
		if !k.Step() {
			break
		}
		if !r.CanDeliver(opt.TargetLC) {
			return float64(k.Now()), nil
		}
	}
	return -1, nil
}

// runReps executes one function per replication, optionally across
// workers, returning per-replication outcomes in replication order.
func runReps(opt Options, one func(Options, uint64) (float64, error)) ([]float64, error) {
	trials := opt.Metrics.Counter("montecarlo_trials_total", "Completed Monte-Carlo replications.")
	out := make([]float64, opt.Reps)
	workers := opt.Workers
	if workers <= 1 {
		for rep := 0; rep < opt.Reps; rep++ {
			v, err := one(opt, uint64(rep))
			if err != nil {
				return nil, err
			}
			out[rep] = v
			trials.Inc()
		}
		return out, nil
	}
	type result struct {
		rep int
		v   float64
		err error
	}
	jobs := make(chan int)
	results := make(chan result)
	for w := 0; w < workers; w++ {
		go func() {
			for rep := range jobs {
				v, err := one(opt, uint64(rep))
				trials.Inc()
				results <- result{rep, v, err}
			}
		}()
	}
	go func() {
		for rep := 0; rep < opt.Reps; rep++ {
			jobs <- rep
		}
		close(jobs)
	}()
	var firstErr error
	for i := 0; i < opt.Reps; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		out[r.rep] = r.v
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// AvailabilityResult is the outcome of EstimateAvailability.
type AvailabilityResult struct {
	Horizon float64
	// PerRep accumulates the per-replication time-averaged availability
	// of LC 0's service.
	PerRep stats.Welford
}

// Estimate returns the availability point estimate.
func (a AvailabilityResult) Estimate() float64 { return a.PerRep.Mean() }

// CI returns the normal 95% interval over replications.
func (a AvailabilityResult) CI() (lo, hi float64) { return a.PerRep.CI(1.96) }

// EstimateAvailability runs Reps replications with repair and reports the
// time-averaged fraction of each horizon during which LC 0 delivered
// service.
func EstimateAvailability(opt Options) (AvailabilityResult, error) {
	if err := opt.Validate(); err != nil {
		return AvailabilityResult{}, err
	}
	if opt.Rates.Repair <= 0 {
		return AvailabilityResult{}, fmt.Errorf("montecarlo: availability runs need repair")
	}
	res := AvailabilityResult{Horizon: opt.Horizon}
	outcomes, err := runReps(opt, availabilityRep)
	if err != nil {
		return res, err
	}
	for _, a := range outcomes {
		res.PerRep.Add(a)
	}
	lo, hi := res.CI()
	publishCI(opt, lo, hi)
	return res, nil
}

// availabilityRep runs one replication and returns the time-averaged
// availability of LC 0's service.
func availabilityRep(opt Options, rep uint64) (float64, error) {
	r, inj, err := build(opt, rep)
	if err != nil {
		return 0, err
	}
	inj.Start()
	k := r.Kernel()
	tracker := sim.NewUpDownTracker(k)
	for k.Now() < sim.Time(opt.Horizon) {
		if !k.Step() {
			break
		}
		tracker.SetUp(r.CanDeliver(opt.TargetLC))
	}
	k.RunUntil(sim.Time(opt.Horizon))
	tracker.SetUp(r.CanDeliver(opt.TargetLC))
	return tracker.Availability(), nil
}

// build constructs the router and injector for one replication.
func build(opt Options, rep uint64) (*router.Router, *router.Injector, error) {
	cfg := router.UniformConfig(opt.Arch, opt.N, opt.M)
	cfg.Seed = opt.Seed*1_000_003 + rep
	r, err := router.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	r.InstallUniformRoutes()
	r.SetMetrics(opt.Metrics)
	inj, err := router.NewInjector(r, opt.Rates)
	if err != nil {
		return nil, nil, err
	}
	return r, inj, nil
}
