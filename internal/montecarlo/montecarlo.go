// Package montecarlo estimates the dependability of the executable router
// model by replicated fault-injection simulation, providing an independent
// cross-check of the analytical Markov models: the simulator knows nothing
// of the chains — it injects per-component exponential lifetimes into the
// full router and watches the service predicate — so agreement between the
// two is evidence that both encode the architecture the same way.
//
// Two estimation regimes coexist:
//
//   - Crude Monte Carlo (EstimateReliability, EstimateAvailability):
//     replications under the true failure dynamics. Adequate wherever the
//     event of interest is common enough to be observed.
//   - Rare-event importance sampling (Options.Biasing, plus the
//     regenerative EstimateUnavailability in rareevent.go): replications
//     under balanced failure biasing, de-biased by the injector's
//     likelihood ratio. This is how the 9^7–9^8 nines band of the paper's
//     Fig. 7 becomes measurable — crude MC observes zero failures there
//     at any feasible budget.
//
// Both regimes share one batch scheduler: replications are dispatched in
// batches over the worker pool, each replication on its own xrand Jump
// stream split sequentially from the master seed, and results are folded
// in replication order — so every estimate is bit-identical for any
// Workers value, and sequential stopping (Options.TargetRelErr) composes
// with parallelism.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/linecard"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// DefaultBatch is the batch size used by sequential stopping when
// Options.Batch is zero: large enough to amortise the stopping-rule check,
// small enough to not overshoot the target badly.
const DefaultBatch = 1024

// DefaultCyclesPerRep is the number of regenerative cycles one
// replication's router is reused for in EstimateUnavailability.
const DefaultCyclesPerRep = 100

// Options configures an estimation run.
type Options struct {
	Arch linecard.Arch
	// N is the LC count; M the number of LCs sharing LC 0's protocol.
	N, M int
	// Rates are the component failure rates (and repair rate for
	// availability runs).
	Rates router.FaultRates
	// Topology selects each replication router's interconnect graph; the
	// zero value is the paper's bus. The same estimators, biasing, and
	// checkpoints run unchanged on every kind.
	Topology topology.Spec
	// Horizon is the simulated time per replication (hours). Ignored by
	// the regenerative EstimateUnavailability, whose replication unit is
	// the repair cycle.
	Horizon float64
	// Reps is the number of independent replications. With TargetRelErr
	// set it becomes the replication budget cap instead of a fixed count.
	Reps int
	// Seed makes the whole estimate reproducible: a master generator is
	// seeded with it and every replication receives its own
	// non-overlapping stream via sequential Jump splits, in replication
	// order.
	Seed uint64
	// Workers fans replications out over goroutines (each replication
	// owns a private router, so they share nothing). 0 or 1 runs
	// sequentially. Streams are split and results aggregated in
	// replication order, so the estimate is bit-identical regardless of
	// worker count.
	Workers int
	// TargetLC selects the linecard under analysis (the paper's LCUA);
	// default 0.
	TargetLC int
	// Biasing enables balanced failure biasing in every replication's
	// fault injector (see router.Biasing). Estimates are de-biased by the
	// accumulated likelihood ratios and stay unbiased; variance collapses
	// for rare failure events. EstimateAvailability rejects it — use
	// EstimateUnavailability, whose regenerative cycles keep the weights
	// bounded.
	Biasing router.Biasing
	// TargetRelErr, when positive, switches to sequential stopping: the
	// engine runs batches of replications until the 95% relative CI
	// half-width of the rare quantity (the failure probability, or the
	// unavailability) drops to this target, or the Reps budget runs out.
	TargetRelErr float64
	// Batch is the sequential-stopping batch size; 0 selects DefaultBatch.
	// It is also the granularity of checkpoints (OnBatch) and of
	// interruption (Ctx/Watchdog): an explicit Batch carves even a
	// fixed-count run into that many replications per batch.
	Batch int
	// CyclesPerRep is how many regenerative cycles EstimateUnavailability
	// simulates per replication (router construction is amortised across
	// them); 0 selects DefaultCyclesPerRep.
	CyclesPerRep int
	// Metrics, when non-nil, receives live progress: every replication's
	// router and kernel are instrumented against it (counters are
	// atomic, so concurrent workers share it safely), and the estimators
	// publish montecarlo_trials_total, montecarlo_batches_total,
	// montecarlo_ci_halfwidth, montecarlo_relative_error, the
	// montecarlo_logweight_max/min extremes and montecarlo_stops_total
	// for convergence watching over /metrics.
	Metrics *metrics.Registry
	// Ctx, when non-nil, is checked at every batch boundary: once it is
	// cancelled the run stops with StopInterrupted and returns the
	// partial estimate folded so far (plus, via OnBatch, a checkpoint to
	// resume from). Replications already dispatched finish their batch —
	// interruption never lands mid-fold, which is what makes resumed
	// runs bit-identical.
	Ctx context.Context
	// Watchdog, when positive, bounds the run's wall-clock time: a batch
	// boundary past the deadline stops the run with StopInterrupted,
	// exactly like a cancelled Ctx. It guards unattended campaign and CI
	// runs against a pathological configuration spinning forever.
	Watchdog time.Duration
	// OnBuild, when non-nil, is called with every replication's freshly
	// constructed router before injection starts — the hook for fault
	// campaigns and tests to pre-damage or instrument per-replication
	// state. It runs inside the replication's panic capture: a panic
	// here is recorded as a failed trial, not a crashed run.
	OnBuild func(rep uint64, r *router.Router)
	// OnBatch, when non-nil, receives an exact resumable Checkpoint
	// after every folded batch. Persist it (Checkpoint.WriteFile is
	// atomic) and a killed run resumes via Resume with no lost work
	// beyond the batch in flight.
	OnBatch func(Checkpoint)
	// Resume, when non-nil, restores a prior run's accumulators and
	// skips its RepsDone replication streams, continuing at the next
	// batch boundary. The checkpoint's Mode and Seed must match the run;
	// the resumed estimate is bit-identical to an uninterrupted run of
	// the same total budget.
	Resume *Checkpoint
}

// Validate rejects nonsensical options.
func (o Options) Validate() error {
	if o.N < 2 || o.M < 1 || o.M > o.N {
		return fmt.Errorf("montecarlo: bad N=%d M=%d", o.N, o.M)
	}
	if o.Horizon <= 0 {
		return fmt.Errorf("montecarlo: horizon must be positive")
	}
	if o.Reps < 1 {
		return fmt.Errorf("montecarlo: need at least one replication")
	}
	if o.TargetLC < 0 || o.TargetLC >= o.N {
		return fmt.Errorf("montecarlo: target LC %d outside [0, N)", o.TargetLC)
	}
	if o.TargetRelErr < 0 || o.TargetRelErr >= 1 {
		return fmt.Errorf("montecarlo: target relative error %g outside [0, 1)", o.TargetRelErr)
	}
	if o.Batch < 0 {
		return fmt.Errorf("montecarlo: negative batch size")
	}
	if o.CyclesPerRep < 0 {
		return fmt.Errorf("montecarlo: negative cycles per replication")
	}
	if err := o.Topology.Validate(o.N); err != nil {
		return fmt.Errorf("montecarlo: topology %w", err)
	}
	if err := o.Biasing.Validate(); err != nil {
		return err
	}
	return o.Rates.Validate()
}

// batchSize resolves the sequential-stopping increment.
func (o Options) batchSize() int {
	b := o.Batch
	if b == 0 {
		b = DefaultBatch
	}
	if b > o.Reps {
		b = o.Reps
	}
	return b
}

// Stop reasons reported by the batch scheduler.
const (
	// StopTarget: the relative CI half-width reached TargetRelErr.
	StopTarget = "target"
	// StopBudget: the Reps budget ran out before the target was reached.
	StopBudget = "budget"
	// StopFixed: no TargetRelErr was set; the fixed Reps count ran.
	StopFixed = "fixed"
	// StopInterrupted: Options.Ctx was cancelled or the Watchdog
	// deadline passed; the result is the partial estimate at the last
	// completed batch.
	StopInterrupted = "interrupted"
)

// splitN carves n sequential non-overlapping streams off the master
// generator. Allocation order is replication order — the cornerstone of
// worker-count independence.
func splitN(master *xrand.Source, n int) []*xrand.Source {
	out := make([]*xrand.Source, n)
	for i := range out {
		out[i] = master.Split()
	}
	return out
}

// trialResult is one replication's outcome inside a batch: either a
// value to fold or a captured panic (the batch survives the latter).
type trialResult[T any] struct {
	v      T
	failed *FailedTrial
}

// runBatch executes one replication function per pre-split stream,
// optionally across workers, returning per-replication outcomes in
// replication order. rep numbering starts at base. A replication that
// panics is recorded as a failed trial — the rest of the batch runs to
// completion; only returned errors (misconfiguration) abort the run.
func runBatch[T any](opt Options, base uint64, streams []*xrand.Source,
	one func(Options, uint64, *xrand.Source) (T, error)) ([]trialResult[T], error) {
	trials := opt.Metrics.Counter("montecarlo_trials_total", "Completed Monte-Carlo replications.")
	failedCtr := opt.Metrics.Counter("montecarlo_failed_trials_total", "Replications that panicked and were recorded as failed trials.")
	n := len(streams)
	out := make([]trialResult[T], n)
	record := func(i int, v T, ft *FailedTrial) {
		out[i] = trialResult[T]{v: v, failed: ft}
		if ft != nil {
			failedCtr.Inc()
		} else {
			trials.Inc()
		}
	}
	workers := opt.Workers
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, ft, err := runOne(opt, base+uint64(i), streams[i], one)
			if err != nil {
				return nil, err
			}
			record(i, v, ft)
		}
		return out, nil
	}
	type result struct {
		i      int
		v      T
		failed *FailedTrial
		err    error
	}
	jobs := make(chan int)
	results := make(chan result)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				v, ft, err := runOne(opt, base+uint64(i), streams[i], one)
				results <- result{i, v, ft, err}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
	}()
	var firstErr error
	for k := 0; k < n; k++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		record(r.i, r.v, r.failed)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// drive is the sequential-stopping batch scheduler shared by every
// estimator: it splits streams, runs batches through runBatch, folds each
// batch in replication order via fold, and keeps going until relErr()
// reaches the target, the Reps budget is exhausted, or the run is
// interrupted (Ctx/Watchdog). It returns the number of batches run, the
// stop reason and the failed trials recorded along the way.
//
// snap captures the estimator's accumulator state; drive stamps the
// scheduler fields onto it for Options.OnBatch checkpoints. With
// Options.Resume set, drive verifies the checkpoint matches, advances
// the master generator past the already-consumed streams and continues
// at the next batch boundary.
func drive[T any](opt Options, mode string,
	one func(Options, uint64, *xrand.Source) (T, error),
	fold func(T),
	relErr func() float64,
	snap func() Checkpoint) (batches int, stopReason string, failed []FailedTrial, err error) {

	master := xrand.New(opt.Seed)
	batchesCtr := opt.Metrics.Counter("montecarlo_batches_total", "Batches dispatched by the sequential-stopping scheduler.")
	relGauge := opt.Metrics.Gauge("montecarlo_relative_error", "Relative 95% CI half-width of the rare-quantity estimate.")
	stops := opt.Metrics.CounterVec("montecarlo_stops_total", "Estimation runs finished, by stop reason.", "reason")

	done := 0
	if cp := opt.Resume; cp != nil {
		if cp.Mode != mode {
			return 0, "", nil, fmt.Errorf("montecarlo: resume checkpoint is a %s run, this is %s", cp.Mode, mode)
		}
		if cp.Seed != opt.Seed {
			return 0, "", nil, fmt.Errorf("montecarlo: resume checkpoint seed %d does not match option seed %d", cp.Seed, opt.Seed)
		}
		done = int(cp.RepsDone)
		batches = cp.Batches
		failed = append(failed, cp.Failed...)
		// Streams are split sequentially in replication order, so the
		// master state after RepsDone replications is RepsDone jumps in.
		for i := 0; i < done; i++ {
			master.Jump()
		}
	}

	batch := opt.Reps
	if opt.TargetRelErr > 0 || opt.Batch > 0 {
		// An explicit Batch also sets the checkpoint/interrupt
		// granularity of fixed-count runs.
		batch = opt.batchSize()
	}
	stopReason = StopFixed
	if opt.Resume != nil && opt.TargetRelErr > 0 && done > 0 && relErr() <= opt.TargetRelErr {
		// The uninterrupted run would already have stopped at this batch
		// boundary; resuming must not overshoot it.
		stopReason = StopTarget
		stops.With(stopReason).Inc()
		return batches, stopReason, failed, nil
	}
	var deadline time.Time
	if opt.Watchdog > 0 {
		deadline = time.Now().Add(opt.Watchdog)
	}
	for done < opt.Reps {
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			stopReason = StopInterrupted
			break
		}
		if opt.Watchdog > 0 && time.Now().After(deadline) {
			stopReason = StopInterrupted
			break
		}
		n := batch
		if rest := opt.Reps - done; n > rest {
			n = rest
		}
		streams := splitN(master, n)
		outs, err := runBatch(opt, uint64(done), streams, one)
		if err != nil {
			return batches, "", failed, err
		}
		for _, tr := range outs {
			if tr.failed != nil {
				failed = append(failed, *tr.failed)
				continue
			}
			fold(tr.v)
		}
		done += n
		batches++
		batchesCtr.Inc()
		if opt.OnBatch != nil {
			cp := snap()
			cp.Mode = mode
			cp.Seed = opt.Seed
			cp.RepsDone = uint64(done)
			cp.Batches = batches
			cp.Failed = append([]FailedTrial(nil), failed...)
			opt.OnBatch(cp)
		}
		re := relErr()
		relGauge.Set(re)
		if opt.TargetRelErr > 0 {
			if re <= opt.TargetRelErr {
				stopReason = StopTarget
				break
			}
			stopReason = StopBudget
		}
	}
	stops.With(stopReason).Inc()
	return batches, stopReason, failed, nil
}

// ReliabilityResult is the outcome of EstimateReliability.
type ReliabilityResult struct {
	Horizon float64
	// Biased records whether the run used failure biasing; it selects
	// which accumulator backs Estimate and CI.
	Biased bool
	// Survival estimates R(Horizon) for the target LC: the fraction of
	// replications in which its packet service never failed. Meaningful
	// only for unbiased runs (under biasing the raw fraction estimates
	// the *biased* dynamics).
	Survival stats.Proportion
	// Failure accumulates the per-replication unbiased failure estimate
	// W·1{failed by Horizon} (W ≡ 1 without biasing). Its mean estimates
	// F(Horizon) = 1 − R(Horizon) under both regimes and drives the
	// sequential stopping rule.
	Failure stats.Welford
	// Weights tallies the likelihood ratios of a biased run (weight
	// extremes, effective sample size). Empty for unbiased runs.
	Weights stats.LogWeights
	// TTF accumulates observed times to first service failure (only for
	// replications that failed within the horizon, only unbiased runs —
	// biased failure times follow the biased dynamics).
	TTF stats.Welford
	// TTFSamples holds the raw failure times, in replication order, for
	// histograms and quantiles. Unbiased runs only.
	TTFSamples []float64
	// Batches and StopReason report the scheduler outcome.
	Batches    int
	StopReason string
	// Failed lists replications that panicked; each entry is a repro
	// bundle (ReplayReliabilityTrial reproduces the panic). Failed
	// trials are excluded from every accumulator above.
	Failed []FailedTrial
}

// Estimate returns the reliability point estimate.
func (r ReliabilityResult) Estimate() float64 {
	if r.Biased {
		return 1 - r.Failure.Mean()
	}
	return r.Survival.Estimate()
}

// CI returns the 95% interval for the reliability: Wilson for crude runs,
// the normal interval of the weighted failure estimator for biased ones.
func (r ReliabilityResult) CI() (lo, hi float64) {
	if r.Biased {
		flo, fhi := r.Failure.CI(1.96)
		return 1 - fhi, 1 - flo
	}
	return r.Survival.Wilson(1.96)
}

// relOut is one reliability replication's outcome.
type relOut struct {
	failedAt float64 // -1 when the service survived the horizon
	logW     float64 // accumulated log likelihood ratio (0 unbiased)
}

// foldOutcome folds one replication's outcome into the accumulators. It
// is the single fold path shared by EstimateReliability and the shard
// merge (MergeReliabilityShards): folding the same outcomes in the same
// replication order through this method is what makes a merged
// fleet-sharded estimate bit-identical to a standalone run.
func (r *ReliabilityResult) foldOutcome(horizon float64, o relOut) {
	failed := o.failedAt >= 0 && o.failedAt <= horizon
	if r.Biased {
		w := 0.0
		if failed {
			w = math.Exp(o.logW)
		}
		r.Failure.Add(w)
		r.Weights.Add(o.logW)
		return
	}
	r.Survival.Add(!failed)
	if failed {
		r.Failure.Add(1)
		r.TTF.Add(o.failedAt)
		r.TTFSamples = append(r.TTFSamples, o.failedAt)
	} else {
		r.Failure.Add(0)
	}
}

// EstimateReliability runs replications without repair and reports the
// fraction in which the target LC's service survived the horizon. With
// Options.Biasing the failure probability is estimated by the unbiased
// likelihood-ratio estimator instead of the raw fraction; with
// Options.TargetRelErr replications run in batches until the failure
// estimate's relative CI half-width reaches the target.
func EstimateReliability(opt Options) (ReliabilityResult, error) {
	if err := opt.Validate(); err != nil {
		return ReliabilityResult{}, err
	}
	if opt.Rates.Repair != 0 {
		return ReliabilityResult{}, fmt.Errorf("montecarlo: reliability runs must not repair")
	}
	res := ReliabilityResult{Horizon: opt.Horizon, Biased: opt.Biasing.Enabled}
	if cp := opt.Resume; cp != nil {
		if cp.Survival != nil {
			res.Survival = *cp.Survival
		}
		if cp.Failure != nil {
			res.Failure.Restore(*cp.Failure)
		}
		if cp.TTF != nil {
			res.TTF.Restore(*cp.TTF)
		}
		if cp.Weights != nil {
			res.Weights.Restore(*cp.Weights)
		}
		res.TTFSamples = append(res.TTFSamples, cp.TTFSamples...)
	}
	fold := func(o relOut) { res.foldOutcome(opt.Horizon, o) }
	snap := func() Checkpoint {
		sv, f, ttf, w := res.Survival, res.Failure.State(), res.TTF.State(), res.Weights.State()
		return Checkpoint{
			Survival:   &sv,
			Failure:    &f,
			TTF:        &ttf,
			Weights:    &w,
			TTFSamples: append([]float64(nil), res.TTFSamples...),
		}
	}
	batches, reason, failed, err := drive(opt, ModeReliability, reliabilityRep, fold,
		func() float64 { return res.Failure.RelHalfWidth(1.96) }, snap)
	if err != nil {
		return res, err
	}
	res.Batches, res.StopReason, res.Failed = batches, reason, failed
	lo, hi := res.CI()
	publishCI(opt, lo, hi)
	if res.Biased {
		publishWeights(opt, &res.Weights)
	}
	return res, nil
}

// publishCI records the 95% confidence-interval half-width, the
// convergence measure an operator watches on a long estimation run.
func publishCI(opt Options, lo, hi float64) {
	opt.Metrics.Gauge("montecarlo_ci_halfwidth", "Half-width of the estimator's 95% confidence interval.").
		Set((hi - lo) / 2)
}

// publishWeights records the likelihood-ratio extremes of a biased run —
// the first thing to look at when an importance-sampling estimate
// misbehaves (a runaway max weight means the biasing is mis-tuned).
func publishWeights(opt Options, w *stats.LogWeights) {
	if w.N() == 0 {
		return
	}
	opt.Metrics.Gauge("montecarlo_logweight_max", "Largest log likelihood ratio observed.").Set(w.Max)
	opt.Metrics.Gauge("montecarlo_logweight_min", "Smallest log likelihood ratio observed.").Set(w.Min)
}

// reliabilityRep runs one replication and returns the time of the first
// service failure of the target LC (or -1) plus the trajectory's log
// likelihood ratio up to that stopping time.
func reliabilityRep(opt Options, rep uint64, src *xrand.Source) (relOut, error) {
	r, inj, err := build(opt, rep, src)
	if err != nil {
		return relOut{}, err
	}
	inj.Start()
	k := r.Kernel()
	for k.Now() < sim.Time(opt.Horizon) {
		if !k.Step() {
			break
		}
		if !r.CanDeliverCached(opt.TargetLC) {
			return relOut{failedAt: float64(k.Now()), logW: inj.CheckpointLR()}, nil
		}
	}
	return relOut{failedAt: -1, logW: inj.CheckpointLR()}, nil
}

// AvailabilityResult is the outcome of EstimateAvailability.
type AvailabilityResult struct {
	Horizon float64
	// PerRep accumulates the per-replication time-averaged availability
	// of the target LC's service.
	PerRep stats.Welford
	// Batches and StopReason report the scheduler outcome.
	Batches    int
	StopReason string
	// Failed lists replications that panicked (repro bundles; excluded
	// from PerRep).
	Failed []FailedTrial
}

// Estimate returns the availability point estimate.
func (a AvailabilityResult) Estimate() float64 { return a.PerRep.Mean() }

// CI returns the normal 95% interval over replications.
func (a AvailabilityResult) CI() (lo, hi float64) { return a.PerRep.CI(1.96) }

// EstimateAvailability runs replications with repair and reports the
// time-averaged fraction of each horizon during which the target LC
// delivered service.
//
// It rejects Options.Biasing: a whole-horizon likelihood ratio spans many
// repair cycles, so its variance grows exponentially with the horizon and
// the weighted estimate degenerates. The regenerative
// EstimateUnavailability applies the weight per repair cycle — where it
// stays bounded — and is the correct tool for rare-event availability.
func EstimateAvailability(opt Options) (AvailabilityResult, error) {
	if err := opt.Validate(); err != nil {
		return AvailabilityResult{}, err
	}
	if opt.Rates.Repair <= 0 {
		return AvailabilityResult{}, fmt.Errorf("montecarlo: availability runs need repair")
	}
	if opt.Biasing.Enabled {
		return AvailabilityResult{}, fmt.Errorf("montecarlo: whole-horizon availability cannot be importance-sampled (weight variance explodes across repair cycles); use EstimateUnavailability")
	}
	res := AvailabilityResult{Horizon: opt.Horizon}
	if cp := opt.Resume; cp != nil && cp.PerRep != nil {
		res.PerRep.Restore(*cp.PerRep)
	}
	snap := func() Checkpoint {
		pr := res.PerRep.State()
		return Checkpoint{PerRep: &pr}
	}
	batches, reason, failed, err := drive(opt, ModeAvailability, availabilityRep,
		func(a float64) { res.PerRep.Add(a) },
		func() float64 { return res.PerRep.RelHalfWidth(1.96) }, snap)
	if err != nil {
		return res, err
	}
	res.Batches, res.StopReason, res.Failed = batches, reason, failed
	lo, hi := res.CI()
	publishCI(opt, lo, hi)
	return res, nil
}

// availabilityRep runs one replication and returns the time-averaged
// availability of the target LC's service.
func availabilityRep(opt Options, rep uint64, src *xrand.Source) (float64, error) {
	r, inj, err := build(opt, rep, src)
	if err != nil {
		return 0, err
	}
	inj.Start()
	k := r.Kernel()
	tracker := sim.NewUpDownTracker(k)
	for k.Now() < sim.Time(opt.Horizon) {
		if !k.Step() {
			break
		}
		tracker.SetUp(r.CanDeliverCached(opt.TargetLC))
	}
	k.RunUntil(sim.Time(opt.Horizon))
	tracker.SetUp(r.CanDeliverCached(opt.TargetLC))
	return tracker.Availability(), nil
}

// build constructs the router and injector for one replication on its own
// pre-split random stream.
func build(opt Options, rep uint64, src *xrand.Source) (*router.Router, *router.Injector, error) {
	cfg := router.UniformConfig(opt.Arch, opt.N, opt.M)
	cfg.Topology = opt.Topology
	cfg.Source = src
	r, err := router.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	r.InstallUniformRoutes()
	r.SetMetrics(opt.Metrics)
	if opt.OnBuild != nil {
		opt.OnBuild(rep, r)
	}
	inj, err := router.NewInjector(r, opt.Rates)
	if err != nil {
		return nil, nil, err
	}
	b := opt.Biasing
	if b.Enabled {
		// Switch the biasing off once the target LC's service is down:
		// the rare set has been hit, and continuing to inflate rates
		// while waiting for the repair only adds exposure variance to the
		// very cycles that carry the estimate (see router.Biasing).
		b.StopWhen = func() bool { return !r.CanDeliverCached(opt.TargetLC) }
	}
	if err := inj.SetBiasing(b); err != nil {
		return nil, nil, err
	}
	return r, inj, nil
}
