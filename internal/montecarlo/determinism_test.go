package montecarlo

import (
	"testing"

	"repro/internal/linecard"
	"repro/internal/router"
)

// The engine's contract is that Options.Seed fully determines every
// estimate: replication streams are split off the master generator in
// replication order and results are folded in replication order, so the
// worker count is pure scheduling. These tests pin that contract
// bit-for-bit across Workers ∈ {1, 4, 16} for every estimator — nothing
// guarded it before, and a map-ordered iteration or a racy fold would
// break it silently.

var workerGrid = []int{1, 4, 16}

func TestReliabilityBitIdenticalAcrossWorkers(t *testing.T) {
	base := Options{
		Arch: linecard.DRA, N: 6, M: 3,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 240, Seed: 17,
	}
	type snap struct {
		est, ttfMean float64
		ttfN         int
	}
	var first snap
	for i, w := range workerGrid {
		opt := base
		opt.Workers = w
		res, err := EstimateReliability(opt)
		if err != nil {
			t.Fatal(err)
		}
		got := snap{res.Estimate(), res.TTF.Mean(), res.TTF.N()}
		if i == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("Workers=%d diverged: %+v vs %+v", w, got, first)
		}
	}
}

func TestBiasedReliabilityBitIdenticalAcrossWorkers(t *testing.T) {
	base := Options{
		Arch: linecard.DRA, N: 6, M: 3,
		Rates:   router.PaperRates(0),
		Horizon: 40000, Reps: 240, Seed: 23,
		Biasing: router.Biasing{Enabled: true, Delta: 0.6},
	}
	type snap struct {
		est, failMean, wMax, wMin float64
	}
	var first snap
	for i, w := range workerGrid {
		opt := base
		opt.Workers = w
		res, err := EstimateReliability(opt)
		if err != nil {
			t.Fatal(err)
		}
		got := snap{res.Estimate(), res.Failure.Mean(), res.Weights.Max, res.Weights.Min}
		if i == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("Workers=%d diverged: %+v vs %+v", w, got, first)
		}
	}
}

func TestAvailabilityBitIdenticalAcrossWorkers(t *testing.T) {
	base := Options{
		Arch: linecard.DRA, N: 4, M: 2,
		Rates:   router.PaperRates(1.0 / 3),
		Horizon: 200000, Reps: 32, Seed: 29,
	}
	var first float64
	for i, w := range workerGrid {
		opt := base
		opt.Workers = w
		res, err := EstimateAvailability(opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Estimate()
			continue
		}
		if res.Estimate() != first {
			t.Fatalf("Workers=%d diverged: %v vs %v", w, res.Estimate(), first)
		}
	}
}

// TestUnavailabilityBitIdenticalAcrossWorkers also runs with sequential
// stopping engaged, so the batch scheduler itself is covered: batch
// boundaries depend only on folded results, never on scheduling.
func TestUnavailabilityBitIdenticalAcrossWorkers(t *testing.T) {
	base := Options{
		Arch: linecard.DRA, N: 4, M: 2,
		Rates: router.PaperRates(1.0 / 3),
		Reps:  600, Seed: 31,
		Biasing:      router.Biasing{Enabled: true, Delta: 0.3},
		TargetRelErr: 0.5,
		Batch:        100,
		CyclesPerRep: 20,
	}
	type snap struct {
		est, wMax, wMin float64
		cycles, down    uint64
		batches         int
		stop            string
	}
	var first snap
	for i, w := range workerGrid {
		opt := base
		opt.Workers = w
		res, err := EstimateUnavailability(opt)
		if err != nil {
			t.Fatal(err)
		}
		got := snap{res.Estimate(), res.Weights.Max, res.Weights.Min,
			res.Cycles, res.DownCycles, res.Batches, res.StopReason}
		if i == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("Workers=%d diverged:\n  %+v\nvs\n  %+v", w, got, first)
		}
	}
}
