package montecarlo

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/linecard"
	"repro/internal/router"
)

// unavailOpts is a small rare-event configuration shared by the
// lifecycle tests: repair present, biasing on, fixed replication count.
func unavailOpts() Options {
	return Options{
		Arch:         linecard.DRA,
		N:            4,
		M:            2,
		Rates:        router.PaperRates(1.0 / 3),
		Reps:         12,
		Seed:         99,
		CyclesPerRep: 20,
		Batch:        4,
		Biasing:      router.Biasing{Enabled: true, Delta: 0.3},
	}
}

// TestPanicDoesNotAbortBatch: a replication that panics is recorded as a
// failed trial with a repro bundle; the rest of the batch — and the run —
// completes, and the bundle replays the panic deterministically.
func TestPanicDoesNotAbortBatch(t *testing.T) {
	const victim = 5
	boom := func(rep uint64, r *router.Router) {
		if rep == victim {
			panic("deliberate lifecycle-test panic")
		}
	}
	opt := unavailOpts()
	opt.OnBuild = boom
	res, err := EstimateUnavailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("Failed = %v, want exactly one trial", res.Failed)
	}
	ft := res.Failed[0]
	if ft.Rep != victim || ft.Seed != opt.Seed {
		t.Fatalf("bundle = %+v", ft)
	}
	if !strings.Contains(ft.Panic, "deliberate lifecycle-test panic") || len(ft.Stack) == 0 {
		t.Fatalf("bundle lacks panic context: %+v", ft)
	}
	// The other replications all folded.
	wantCycles := uint64((opt.Reps - 1) * opt.CyclesPerRep)
	if res.Cycles != wantCycles {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, wantCycles)
	}

	// Replaying the bundle reproduces the panic deterministically…
	replayOpt := unavailOpts()
	replayOpt.OnBuild = boom
	err = ReplayUnavailabilityTrial(replayOpt, ft.Rep)
	var tp *TrialPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("replay err = %v, want TrialPanicError", err)
	}
	if tp.Trial.Panic != ft.Panic {
		t.Fatalf("replayed panic %q, recorded %q", tp.Trial.Panic, ft.Panic)
	}
	// …and a neighbouring replication replays clean on the same stream
	// derivation, so the panic is pinned to the trial, not the helper.
	if err := ReplayUnavailabilityTrial(replayOpt, victim+1); err != nil {
		t.Fatalf("healthy trial replay failed: %v", err)
	}
}

// TestFailedTrialsExcludedDeterministically: with workers > 1 the failed
// trial is still attributed to the same replication and the estimate is
// bit-identical to the sequential run.
func TestFailedTrialsExcludedDeterministically(t *testing.T) {
	boom := func(rep uint64, r *router.Router) {
		if rep == 3 {
			panic("worker-pool panic")
		}
	}
	seq := unavailOpts()
	seq.OnBuild = boom
	a, err := EstimateUnavailability(seq)
	if err != nil {
		t.Fatal(err)
	}
	par := unavailOpts()
	par.OnBuild = boom
	par.Workers = 4
	b, err := EstimateUnavailability(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != b.Estimate() || a.Cycles != b.Cycles {
		t.Fatalf("sequential %v/%d vs parallel %v/%d", a.Estimate(), a.Cycles, b.Estimate(), b.Cycles)
	}
	if len(a.Failed) != 1 || len(b.Failed) != 1 {
		t.Fatalf("failed trials diverge: %v vs %v", a.Failed, b.Failed)
	}
	// Stacks differ across runs (goroutine addresses); the repro triple
	// must not.
	fa, fb := a.Failed[0], b.Failed[0]
	if fa.Rep != fb.Rep || fa.Seed != fb.Seed || fa.Panic != fb.Panic {
		t.Fatalf("failed trials diverge: %v vs %v", fa, fb)
	}
}

// TestCheckpointResumeBitForBit: interrupt a run at a batch boundary,
// resume from the persisted checkpoint, and the final estimate matches
// the uninterrupted run exactly at equal total cycles.
func TestCheckpointResumeBitForBit(t *testing.T) {
	full, err := EstimateUnavailability(unavailOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt after the second batch via a context cancelled from
	// OnBatch — the same boundary a SIGINT lands on.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	path := filepath.Join(t.TempDir(), "mc.checkpoint")
	interrupted := unavailOpts()
	interrupted.Ctx = ctx
	interrupted.OnBatch = func(cp Checkpoint) {
		if err := cp.WriteFile(path); err != nil {
			t.Errorf("checkpoint write: %v", err)
		}
		if cp.Batches == 2 {
			cancel()
		}
	}
	partial, err := EstimateUnavailability(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if partial.StopReason != StopInterrupted {
		t.Fatalf("StopReason = %q, want %q", partial.StopReason, StopInterrupted)
	}
	if partial.Batches != 2 {
		t.Fatalf("Batches = %d, want 2", partial.Batches)
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Mode != ModeUnavailability || cp.RepsDone != 8 || cp.Batches != 2 {
		t.Fatalf("checkpoint = %+v", cp)
	}
	resumed := unavailOpts()
	resumed.Resume = &cp
	res, err := EstimateUnavailability(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate() != full.Estimate() {
		t.Fatalf("resumed estimate %v != uninterrupted %v", res.Estimate(), full.Estimate())
	}
	rlo, rhi := res.CI()
	flo, fhi := full.CI()
	if rlo != flo || rhi != fhi {
		t.Fatalf("resumed CI [%v, %v] != uninterrupted [%v, %v]", rlo, rhi, flo, fhi)
	}
	if res.Cycles != full.Cycles || res.DownCycles != full.DownCycles {
		t.Fatalf("resumed cycles %d/%d != %d/%d", res.Cycles, res.DownCycles, full.Cycles, full.DownCycles)
	}
	if res.Weights.Max != full.Weights.Max || res.Weights.Min != full.Weights.Min {
		t.Fatal("resumed weight extremes diverge")
	}
}

// TestCheckpointResumeReliability: the reliability estimator checkpoints
// and resumes bit-for-bit too, including the raw TTF sample list.
func TestCheckpointResumeReliability(t *testing.T) {
	base := Options{
		Arch:    linecard.DRA,
		N:       4,
		M:       2,
		Rates:   router.PaperRates(0),
		Horizon: 40000,
		Reps:    60,
		Seed:    7,
		Batch:   20,
	}
	full, err := EstimateReliability(base)
	if err != nil {
		t.Fatal(err)
	}

	var snap *Checkpoint
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := base
	interrupted.Ctx = ctx
	interrupted.OnBatch = func(cp Checkpoint) {
		if cp.Batches == 1 {
			snap = &cp
			cancel()
		}
	}
	if _, err := EstimateReliability(interrupted); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint captured")
	}
	resumed := base
	resumed.Resume = snap
	res, err := EstimateReliability(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate() != full.Estimate() {
		t.Fatalf("resumed %v != full %v", res.Estimate(), full.Estimate())
	}
	if res.TTF.Mean() != full.TTF.Mean() || len(res.TTFSamples) != len(full.TTFSamples) {
		t.Fatalf("TTF state diverges: %v/%d vs %v/%d",
			res.TTF.Mean(), len(res.TTFSamples), full.TTF.Mean(), len(full.TTFSamples))
	}
	for i := range res.TTFSamples {
		if res.TTFSamples[i] != full.TTFSamples[i] {
			t.Fatalf("TTF sample %d diverges", i)
		}
	}
}

// TestResumeRejectsMismatch: a checkpoint from a different mode or seed
// must be refused, not silently folded into a corrupt estimate.
func TestResumeRejectsMismatch(t *testing.T) {
	opt := unavailOpts()
	opt.Resume = &Checkpoint{Mode: ModeReliability, Seed: opt.Seed}
	if _, err := EstimateUnavailability(opt); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	opt = unavailOpts()
	opt.Resume = &Checkpoint{Mode: ModeUnavailability, Seed: opt.Seed + 1}
	if _, err := EstimateUnavailability(opt); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

// TestContextCancelledBeforeStart: an already-cancelled context yields
// an empty interrupted result, not a hang or an error.
func TestContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := unavailOpts()
	opt.Ctx = ctx
	res, err := EstimateUnavailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopInterrupted || res.Cycles != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestWatchdogStopsRun: an expired watchdog deadline behaves like a
// cancelled context.
func TestWatchdogStopsRun(t *testing.T) {
	opt := unavailOpts()
	opt.Reps = 10000
	opt.Batch = 2
	opt.Watchdog = time.Nanosecond
	res, err := EstimateUnavailability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopInterrupted {
		t.Fatalf("StopReason = %q", res.StopReason)
	}
	if res.Batches > 1 {
		t.Fatalf("watchdog let %d batches through", res.Batches)
	}
}

// TestCheckpointFileRoundTrip: WriteFile/LoadCheckpoint preserve the
// accumulator states exactly (JSON float64 round-trip).
func TestCheckpointFileRoundTrip(t *testing.T) {
	var got Checkpoint
	opt := unavailOpts()
	opt.OnBatch = func(cp Checkpoint) { got = cp }
	if _, err := EstimateUnavailability(opt); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := got.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if *back.Ratio != *got.Ratio || *back.Weights != *got.Weights {
		t.Fatalf("round-trip changed state: %+v vs %+v", back, got)
	}
	if back.RepsDone != got.RepsDone || back.Mode != got.Mode || back.Seed != got.Seed {
		t.Fatalf("round-trip changed header: %+v vs %+v", back, got)
	}
}
