package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: Fault})
	if r.Len() != 0 || r.Count(Fault) != 0 || r.Events() != nil || r.Filter(func(Event) bool { return true }) != nil {
		t.Fatal("nil recorder misbehaved")
	}
}

func TestRecordAndCounts(t *testing.T) {
	r := New(8)
	r.Record(Event{At: 1, Kind: Fault, LC: 0, Peer: -1, Detail: "SRU"})
	r.Record(Event{At: 2, Kind: CoverageUp, LC: 0, Peer: 1})
	r.Record(Event{At: 3, Kind: Repair, LC: 0, Peer: -1})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Count(Fault) != 1 || r.Count(CoverageUp) != 1 || r.Count(Drop) != 0 {
		t.Fatal("counts wrong")
	}
	es := r.Events()
	if es[0].At != 1 || es[2].At != 3 {
		t.Fatalf("order wrong: %v", es)
	}
}

func TestRingEviction(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.Record(Event{At: float64(i), Kind: Drop})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	es := r.Events()
	if es[0].At != 4 || es[1].At != 5 || es[2].At != 6 {
		t.Fatalf("ring kept wrong window: %v", es)
	}
	if r.Count(Drop) != 7 {
		t.Fatalf("lifetime count = %d", r.Count(Drop))
	}
}

func TestFilterAndDump(t *testing.T) {
	r := New(10)
	r.Record(Event{At: 1, Kind: Fault, LC: 2, Peer: -1, Detail: "LFE"})
	r.Record(Event{At: 2, Kind: Drop, LC: -1, Peer: -1, Detail: "no route"})
	faults := r.Filter(func(e Event) bool { return e.Kind == Fault })
	if len(faults) != 1 || faults[0].LC != 2 {
		t.Fatalf("filter = %v", faults)
	}
	d := r.Dump()
	if !strings.Contains(d, "fault") || !strings.Contains(d, "LC2") || !strings.Contains(d, "no route") {
		t.Fatalf("dump:\n%s", d)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Fault: "fault", Repair: "repair", CoverageUp: "coverage-up",
		CoverageDown: "coverage-down", BusDown: "bus-down", BusUp: "bus-up", Drop: "drop",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
	if !strings.Contains(Kind(77).String(), "77") {
		t.Fatal("unknown kind formatting")
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
