package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: Fault})
	if r.Len() != 0 || r.Count(Fault) != 0 || r.Events() != nil || r.Filter(func(Event) bool { return true }) != nil {
		t.Fatal("nil recorder misbehaved")
	}
}

func TestRecordAndCounts(t *testing.T) {
	r := New(8)
	r.Record(Event{At: 1, Kind: Fault, LC: 0, Peer: -1, Detail: "SRU"})
	r.Record(Event{At: 2, Kind: CoverageUp, LC: 0, Peer: 1})
	r.Record(Event{At: 3, Kind: Repair, LC: 0, Peer: -1})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Count(Fault) != 1 || r.Count(CoverageUp) != 1 || r.Count(Drop) != 0 {
		t.Fatal("counts wrong")
	}
	es := r.Events()
	if es[0].At != 1 || es[2].At != 3 {
		t.Fatalf("order wrong: %v", es)
	}
}

func TestRingEviction(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.Record(Event{At: float64(i), Kind: Drop})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	es := r.Events()
	if es[0].At != 4 || es[1].At != 5 || es[2].At != 6 {
		t.Fatalf("ring kept wrong window: %v", es)
	}
	if r.Count(Drop) != 7 {
		t.Fatalf("lifetime count = %d", r.Count(Drop))
	}
}

func TestFilterAndDump(t *testing.T) {
	r := New(10)
	r.Record(Event{At: 1, Kind: Fault, LC: 2, Peer: -1, Detail: "LFE"})
	r.Record(Event{At: 2, Kind: Drop, LC: -1, Peer: -1, Detail: "no route"})
	faults := r.Filter(func(e Event) bool { return e.Kind == Fault })
	if len(faults) != 1 || faults[0].LC != 2 {
		t.Fatalf("filter = %v", faults)
	}
	d := r.Dump()
	if !strings.Contains(d, "fault") || !strings.Contains(d, "LC2") || !strings.Contains(d, "no route") {
		t.Fatalf("dump:\n%s", d)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Fault: "fault", Repair: "repair", CoverageUp: "coverage-up",
		CoverageDown: "coverage-down", BusDown: "bus-down", BusUp: "bus-up", Drop: "drop",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
	if !strings.Contains(Kind(77).String(), "77") {
		t.Fatal("unknown kind formatting")
	}
}

func TestClockStampsZeroTimeEvents(t *testing.T) {
	r := New(4)
	now := 7.5
	r.SetClock(func() float64 { return now })
	r.Record(Event{Kind: Fault})
	now = 9
	r.Record(Event{Kind: Repair})
	r.Record(Event{At: 2, Kind: Drop}) // explicit At wins over the clock
	es := r.Events()
	if es[0].At != 7.5 || es[1].At != 9 || es[2].At != 2 {
		t.Fatalf("stamps = %v %v %v", es[0].At, es[1].At, es[2].At)
	}
	var nilR *Recorder
	nilR.SetClock(func() float64 { return 1 }) // must not panic
}

func TestSeqIsMonotonic(t *testing.T) {
	r := New(2) // small ring: eviction must not reuse sequence numbers
	for i := 0; i < 5; i++ {
		r.Record(Event{At: 1, Kind: Drop})
	}
	es := r.Events()
	if es[0].Seq != 3 || es[1].Seq != 4 {
		t.Fatalf("seqs = %d %d", es[0].Seq, es[1].Seq)
	}
}

func TestDumpOrderIsStable(t *testing.T) {
	// Events recorded out of time order (delayed callbacks do this):
	// Dump must sort by At, with recording order breaking the tie.
	r := New(8)
	r.Record(Event{At: 5, Kind: Repair, LC: 1, Peer: -1})
	r.Record(Event{At: 1, Kind: Fault, LC: 0, Peer: -1, Detail: "SRU"})
	r.Record(Event{At: 1, Kind: Fault, LC: 2, Peer: -1, Detail: "PDLU"})
	d := r.Dump()
	lines := strings.Split(strings.TrimSpace(d), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump:\n%s", d)
	}
	if !strings.Contains(lines[0], "LC0") || !strings.Contains(lines[1], "LC2") || !strings.Contains(lines[2], "repair") {
		t.Fatalf("order wrong:\n%s", d)
	}
	if d != r.Dump() {
		t.Fatal("Dump not deterministic")
	}
}

func TestDropReasonInDump(t *testing.T) {
	r := New(4)
	r.Record(Event{At: 1, Kind: Drop, LC: -1, Peer: -1, Reason: "fabric transfer failed"})
	if !strings.Contains(r.Dump(), "reason=fabric transfer failed") {
		t.Fatalf("dump:\n%s", r.Dump())
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
