package trace

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents replays a small failover: two faults, coverage up, a
// drop, a bus outage, and a whole-LC repair.
func goldenEvents() []Event {
	return []Event{
		{At: 0, Seq: 0, Kind: Fault, LC: 0, Peer: -1, Detail: "SRU"},
		{At: 0, Seq: 1, Kind: Fault, LC: 3, Peer: -1, Detail: "PDLU"},
		{At: 0.5, Seq: 2, Kind: CoverageUp, LC: 0, Peer: 1},
		{At: 1.0, Seq: 3, Kind: Drop, LC: -1, Peer: -1, Reason: "ingress fault uncovered"},
		{At: 1.5, Seq: 4, Kind: BusDown, LC: -1, Peer: -1},
		{At: 1.5, Seq: 5, Kind: CoverageDown, LC: 0, Peer: 1},
		{At: 2.0, Seq: 6, Kind: BusUp, LC: -1, Peer: -1},
		{At: 3.0, Seq: 7, Kind: Repair, LC: 0, Peer: -1, Detail: "all"},
	}
}

func TestChromeExportGolden(t *testing.T) {
	got, err := ChromeExport(goldenEvents(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "timeline.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("timeline differs from %s:\n--- got ---\n%s", path, got)
	}
}

// TestChromeExportStructure checks every record carries the fields a
// trace viewer requires, with a valid phase, non-negative microsecond
// timestamps, and balanced B/E pairs per lane.
func TestChromeExportStructure(t *testing.T) {
	b, err := ChromeExport(goldenEvents(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.Unit)
	}
	valid := map[string]bool{"B": true, "E": true, "i": true, "M": true}
	depth := map[int]int{} // per-tid open-slice depth
	for _, e := range tr.TraceEvents {
		ph, _ := e["ph"].(string)
		if !valid[ph] {
			t.Fatalf("invalid ph %v in %v", e["ph"], e)
		}
		ts, ok := e["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("bad ts in %v", e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("missing pid in %v", e)
		}
		tid, ok := e["tid"].(float64)
		if !ok {
			t.Fatalf("missing tid in %v", e)
		}
		switch ph {
		case "B":
			depth[int(tid)]++
		case "E":
			depth[int(tid)]--
			if depth[int(tid)] < 0 {
				t.Fatalf("E without B on tid %d", int(tid))
			}
		case "i":
			if e["s"] != "t" {
				t.Fatalf("instant without thread scope: %v", e)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d left %d slices open", tid, d)
		}
	}
}

func TestChromeExportNilRecorder(t *testing.T) {
	var r *Recorder
	b, err := ChromeExportRecorder(r, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	var tr ChromeTrace
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	// Only the process_name metadata record — but still a loadable file.
	if len(tr.TraceEvents) == 0 {
		t.Fatal("empty trace lost its metadata")
	}
}

func TestChromeExportRejectsBadScale(t *testing.T) {
	if _, err := ChromeExport(nil, 0); err == nil {
		t.Fatal("expected error for tsScale 0")
	}
}
