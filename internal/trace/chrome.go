package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file exports recorded events as Chrome trace-event JSON — the
// format chrome://tracing and Perfetto load — so an EIB failover can be
// inspected visually: one lane (tid) per linecard plus a bus lane,
// faults and coverage rendered as duration slices, drops as instant
// events.
//
// Format reference: the Trace Event Format spec (JSON Object Format).
// Only the fields every viewer understands are emitted: name, cat, ph,
// ts (microseconds), pid, tid, args, and "M" metadata records naming
// the process and threads.

// ChromeEvent is one trace-event record.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace file object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromePid is the single process id used for the router.
const chromePid = 1

// busTid is the lane used for router-wide events (the EIB lines); LC i
// uses lane i+1 so lane numbers stay positive and dense.
const busTid = 0

func laneOf(lc int) int {
	if lc < 0 {
		return busTid
	}
	return lc + 1
}

// ChromeExport converts events into a Chrome trace. tsScale converts
// one unit of simulated time into microseconds (the trace-event time
// base): pass 1e6 when the model's unit is seconds, 3.6e9 for hours.
// Fault/Repair, CoverageUp/CoverageDown, and BusDown/BusUp are paired
// into duration slices ("B"/"E"); unmatched begins are closed at the
// last timestamp so the file always loads. Drops become instant events.
func ChromeExport(events []Event, tsScale float64) ([]byte, error) {
	if tsScale <= 0 {
		return nil, fmt.Errorf("trace: tsScale must be positive, got %g", tsScale)
	}
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Seq < evs[j].Seq
	})

	tr := ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	lanes := map[int]string{busTid: "EIB / router"}
	end := 0.0
	if n := len(evs); n > 0 {
		end = evs[n-1].At * tsScale
	}

	// openSlices tracks unmatched "B" events: faults by (lane, detail),
	// coverage by lane, the bus outage by the bus lane.
	type sliceKey struct {
		lane int
		name string
	}
	open := map[sliceKey]bool{}
	begin := func(lane int, name, cat string, ts float64, args map[string]any) {
		k := sliceKey{lane, name}
		if open[k] {
			// Duplicate begin (e.g. a second fault event before repair):
			// close the previous slice first so B/E stay balanced.
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: name, Cat: cat, Ph: "E", Ts: ts, Pid: chromePid, Tid: lane})
		}
		open[k] = true
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: name, Cat: cat, Ph: "B", Ts: ts, Pid: chromePid, Tid: lane, Args: args})
	}
	finish := func(lane int, name, cat string, ts float64) {
		k := sliceKey{lane, name}
		if !open[k] {
			return // repair without a recorded fault (ring evicted it)
		}
		delete(open, k)
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: name, Cat: cat, Ph: "E", Ts: ts, Pid: chromePid, Tid: lane})
	}

	for _, e := range evs {
		ts := e.At * tsScale
		lane := laneOf(e.LC)
		if e.LC >= 0 {
			lanes[lane] = fmt.Sprintf("LC %d", e.LC)
		}
		switch e.Kind {
		case Fault:
			begin(lane, "fault "+e.Detail, "fault", ts, map[string]any{"component": e.Detail})
		case Repair:
			if e.Detail == "all" {
				// Whole-LC repair closes every open fault slice on the
				// lane, in name order so output stays deterministic.
				var names []string
				for k := range open {
					if k.lane == lane && len(k.name) > 6 && k.name[:6] == "fault " {
						names = append(names, k.name)
					}
				}
				sort.Strings(names)
				for _, name := range names {
					finish(lane, name, "fault", ts)
				}
			} else {
				finish(lane, "fault "+e.Detail, "fault", ts)
			}
		case CoverageUp:
			begin(lane, "coverage", "coverage", ts, map[string]any{"peer": e.Peer})
		case CoverageDown:
			finish(lane, "coverage", "coverage", ts)
		case BusDown:
			begin(busTid, "bus outage", "bus", ts, nil)
		case BusUp:
			finish(busTid, "bus outage", "bus", ts)
		case Drop:
			reason := e.Reason
			if reason == "" {
				reason = e.Detail
			}
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: "drop", Cat: "drop", Ph: "i", Ts: ts, Pid: chromePid, Tid: lane,
				S: "t", Args: map[string]any{"reason": reason}})
		}
	}

	// Close any slices still open at the end of the recording.
	stillOpen := make([]sliceKey, 0, len(open))
	for k := range open {
		stillOpen = append(stillOpen, k)
	}
	sort.Slice(stillOpen, func(i, j int) bool {
		if stillOpen[i].lane != stillOpen[j].lane {
			return stillOpen[i].lane < stillOpen[j].lane
		}
		return stillOpen[i].name < stillOpen[j].name
	})
	for _, k := range stillOpen {
		finish(k.lane, k.name, "", end)
	}

	// Metadata: process and thread names, emitted lane order.
	meta := []ChromeEvent{{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "dra-router"},
	}}
	laneIDs := make([]int, 0, len(lanes))
	for id := range lanes {
		laneIDs = append(laneIDs, id)
	}
	sort.Ints(laneIDs)
	for _, id := range laneIDs {
		meta = append(meta, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: id,
			Args: map[string]any{"name": lanes[id]},
		})
	}
	tr.TraceEvents = append(meta, tr.TraceEvents...)
	return json.MarshalIndent(tr, "", "  ")
}

// ChromeExportRecorder exports the recorder's retained events. A nil
// recorder exports an empty (but valid) trace.
func ChromeExportRecorder(r *Recorder, tsScale float64) ([]byte, error) {
	return ChromeExport(r.Events(), tsScale)
}
