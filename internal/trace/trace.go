// Package trace is a lightweight structured event log for the router
// model: a bounded ring buffer of typed events (faults, repairs, coverage
// changes, drops) that operators and tests can query or dump. It costs
// nothing when disabled (the Recorder pointer is nil).
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// The event kinds the router emits.
const (
	Fault Kind = iota
	Repair
	CoverageUp
	CoverageDown
	BusDown
	BusUp
	Drop
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fault:
		return "fault"
	case Repair:
		return "repair"
	case CoverageUp:
		return "coverage-up"
	case CoverageDown:
		return "coverage-down"
	case BusDown:
		return "bus-down"
	case BusUp:
		return "bus-up"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   float64
	Kind Kind
	// LC is the primary linecard involved (-1 when not LC-scoped).
	LC int
	// Peer is the secondary LC (covering peer), -1 when absent.
	Peer int
	// Detail is a short human-readable tag (component name, drop
	// reason).
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := fmt.Sprintf("t=%-12g %-13s", e.At, e.Kind)
	if e.LC >= 0 {
		s += fmt.Sprintf(" LC%d", e.LC)
	}
	if e.Peer >= 0 {
		s += fmt.Sprintf(" peer=LC%d", e.Peer)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Recorder is a bounded ring buffer of events. The zero value is unusable;
// construct with New. A nil *Recorder is safe to record into (no-op), so
// callers can leave tracing off without branching.
type Recorder struct {
	buf     []Event
	next    int
	wrapped bool
	counts  [numKinds]uint64
}

// New returns a recorder holding the last capacity events.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Record appends an event; the oldest event is evicted when full. Safe on
// a nil receiver.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if int(e.Kind) < len(r.counts) {
		r.counts[e.Kind]++
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Count returns the total number of events of the kind ever recorded
// (including evicted ones).
func (r *Recorder) Count(k Kind) uint64 {
	if r == nil || int(k) >= len(r.counts) {
		return 0
	}
	return r.counts[k]
}

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Filter returns retained events matching the predicate, oldest-first.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
