// Package trace is a lightweight structured event log for the router
// model: a bounded ring buffer of typed events (faults, repairs, coverage
// changes, drops) that operators and tests can query or dump. It costs
// nothing when disabled (the Recorder pointer is nil).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// The event kinds the router emits.
const (
	Fault Kind = iota
	Repair
	CoverageUp
	CoverageDown
	BusDown
	BusUp
	Drop
	Violation
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fault:
		return "fault"
	case Repair:
		return "repair"
	case CoverageUp:
		return "coverage-up"
	case CoverageDown:
		return "coverage-down"
	case BusDown:
		return "bus-down"
	case BusUp:
		return "bus-up"
	case Drop:
		return "drop"
	case Violation:
		return "violation"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   float64
	Kind Kind
	// LC is the primary linecard involved (-1 when not LC-scoped).
	LC int
	// Peer is the secondary LC (covering peer), -1 when absent.
	Peer int
	// Detail is a short human-readable tag (component name, coverage
	// context).
	Detail string
	// Reason is the drop cause for Kind == Drop ("no route",
	// "fabric transfer failed", ...); empty otherwise.
	Reason string
	// Seq is the recorder-assigned sequence number, monotonically
	// increasing across the recorder's lifetime (including evicted
	// events). It breaks ties between simultaneous events, keeping
	// Dump order stable.
	Seq uint64
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := fmt.Sprintf("t=%-12g %-13s", e.At, e.Kind)
	if e.LC >= 0 {
		s += fmt.Sprintf(" LC%d", e.LC)
	}
	if e.Peer >= 0 {
		s += fmt.Sprintf(" peer=LC%d", e.Peer)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.Reason != "" {
		s += " reason=" + e.Reason
	}
	return s
}

// Recorder is a bounded ring buffer of events. The zero value is unusable;
// construct with New. A nil *Recorder is safe to record into (no-op), so
// callers can leave tracing off without branching.
type Recorder struct {
	buf     []Event
	next    int
	wrapped bool
	seq     uint64
	counts  [numKinds]uint64
	clock   func() float64
}

// New returns a recorder holding the last capacity events.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// SetClock attaches a simulation-time source. Events recorded with a
// zero At are stamped from the clock, so call sites cannot produce
// zero-time events once the owning model wires its kernel in. Safe on a
// nil receiver; nil detaches the clock.
func (r *Recorder) SetClock(now func() float64) {
	if r != nil {
		r.clock = now
	}
}

// Record appends an event; the oldest event is evicted when full. Safe on
// a nil receiver. The event is stamped with the next sequence number,
// and with the clock time when At is zero and a clock is attached.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.At == 0 && r.clock != nil {
		e.At = r.clock()
	}
	e.Seq = r.seq
	r.seq++
	if int(e.Kind) < len(r.counts) {
		r.counts[e.Kind]++
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Count returns the total number of events of the kind ever recorded
// (including evicted ones).
func (r *Recorder) Count(k Kind) uint64 {
	if r == nil || int(k) >= len(r.counts) {
		return 0
	}
	return r.counts[k]
}

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Filter returns retained events matching the predicate, oldest-first.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events one per line, ordered by timestamp
// with recording order (Seq) breaking ties — a stable order even when
// delayed callbacks record out of time order.
func (r *Recorder) Dump() string {
	evs := r.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Seq < evs[j].Seq
	})
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
