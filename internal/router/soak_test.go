package router

import (
	"testing"

	"repro/internal/linecard"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestSoakFaultsAndTraffic is the end-to-end stress test: a DRA router
// under continuous fault injection with repair, probed with traffic at
// every event. It asserts global invariants — packet conservation,
// predicate/packet agreement, metric consistency — over a long horizon
// with hundreds of fault/repair events.
func TestSoakFaultsAndTraffic(t *testing.T) {
	cfg := UniformConfig(linecard.DRA, 6, 3)
	cfg.Seed = 99
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.InstallUniformRoutes()
	for i := 0; i < 6; i++ {
		r.SetOfferedLoad(i, 0.15*r.LC(i).Capacity())
	}
	// Inflate the paper's rates 200× so a 50 000 h horizon sees hundreds
	// of faults, with a repair process racing them.
	rates := PaperRates(1.0 / 3)
	rates.PDLU *= 200
	rates.SRU *= 200
	rates.LFE *= 200
	rates.BC *= 200
	rates.Bus *= 200
	inj, err := NewInjector(r, rates)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()

	rng := xrand.New(7)
	pool := workload.NewAddrPool(rng, 6, -1)
	var ids uint64
	injected := uint64(0)
	k := r.Kernel()
	for k.Now() < sim.Time(50000) {
		if !k.Step() {
			break
		}
		// Probe with a few packets after each event.
		for b := 0; b < 3; b++ {
			src := rng.Intn(6)
			gen, err := workload.NewPoisson(rng, pool, src, r.LC(src).Protocol(), 1.5e9, &ids)
			if err != nil {
				t.Fatal(err)
			}
			_, p := gen.Next()
			rep := r.Deliver(p)
			injected++
			// Predicate/packet agreement: if both endpoint predicates
			// hold and coverage has settled (no pending events were
			// added by this delivery), a drop is a bug — unless the
			// packet needed a binding that is still forming. We assert
			// the weaker, always-sound direction: a delivery implies
			// the ingress predicate held.
			if rep.Kind != PathDropped && !r.CanDeliver(p.SrcLC) {
				// Exception: a pure egress-side story can deliver from
				// a healthy ingress even while CanDeliver(src) is
				// computed for its own faults; src here must be healthy.
				t.Fatalf("delivered from LC%d while CanDeliver is false (path %v)", p.SrcLC, rep.Kind)
			}
		}
	}
	if inj.Faults < 100 {
		t.Fatalf("soak saw only %d faults — rates/horizon too low to stress", inj.Faults)
	}
	if inj.Repairs == 0 {
		t.Fatal("no repairs in soak")
	}
	m := r.Metrics()
	if m.Delivered+m.Dropped != injected {
		t.Fatalf("conservation: %d + %d != %d", m.Delivered, m.Dropped, injected)
	}
	var perLC uint64
	for i := 0; i < 6; i++ {
		perLC += r.LC(i).Delivered
	}
	if perLC != m.Delivered {
		t.Fatalf("per-LC sum %d != delivered %d", perLC, m.Delivered)
	}
	if m.Delivered == 0 {
		t.Fatal("soak delivered nothing")
	}
	if m.LatencySum <= 0 {
		t.Fatal("latency accounting inactive")
	}
	// The router must end the soak consistent: replaying a settle pass
	// and a full repair restores full service.
	for i := 0; i < 6; i++ {
		r.RepairLC(i)
	}
	if r.Bus().Failed() {
		r.RepairBus()
	}
	k.RunUntil(k.Now() + 1) // settle handshakes without draining the injector
	for i := 0; i < 6; i++ {
		if !r.CanDeliver(i) {
			t.Fatalf("LC%d not delivering after full repair", i)
		}
	}
}

// TestSoakBDRBaseline runs the identical experiment on BDR and asserts
// the headline comparison: DRA delivers a strictly higher fraction of
// probes than BDR under the same fault pressure.
func TestSoakBDRBaseline(t *testing.T) {
	run := func(arch linecard.Arch, m int) (delivered, total uint64) {
		cfg := UniformConfig(arch, 6, m)
		cfg.Seed = 42
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.InstallUniformRoutes()
		rates := PaperRates(1.0 / 3)
		rates.PDLU *= 500
		rates.SRU *= 500
		rates.LFE *= 500
		inj, err := NewInjector(r, rates)
		if err != nil {
			t.Fatal(err)
		}
		inj.Start()
		rng := xrand.New(5)
		pool := workload.NewAddrPool(rng, 6, -1)
		var ids uint64
		k := r.Kernel()
		for k.Now() < sim.Time(30000) {
			if !k.Step() {
				break
			}
			src := rng.Intn(6)
			gen, err := workload.NewPoisson(rng, pool, src, r.LC(src).Protocol(), 1.5e9, &ids)
			if err != nil {
				t.Fatal(err)
			}
			_, p := gen.Next()
			r.Deliver(p)
			total++
		}
		return r.Metrics().Delivered, total
	}
	dDel, dTot := run(linecard.DRA, 6)
	bDel, bTot := run(linecard.BDR, 6)
	dFrac := float64(dDel) / float64(dTot)
	bFrac := float64(bDel) / float64(bTot)
	if dFrac <= bFrac {
		t.Fatalf("DRA delivery fraction %.4f not above BDR %.4f", dFrac, bFrac)
	}
}
