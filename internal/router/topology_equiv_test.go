package router

import (
	"reflect"
	"testing"

	"repro/internal/linecard"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Router-level half of the bus-equivalence pin (the byte-identical MC
// checkpoint in internal/montecarlo is the other half): routing every
// bus query through the topology graph must leave the router's observable
// behavior — metrics, service verdicts, fault trajectories — exactly
// what the seed's bus-specific code produced, and must not cost an
// allocation on the CanDeliverCached hot path on any topology.

// newTopoRouter builds an N/M DRA router on the given topology spec.
func newTopoRouter(t *testing.T, spec topology.Spec, n, m int, seed uint64) *Router {
	t.Helper()
	cfg := UniformConfig(linecard.DRA, n, m)
	cfg.Topology = spec
	cfg.Seed = seed
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.InstallUniformRoutes()
	return r
}

// churn drives an identical seeded fault/repair/traffic script against
// the router and returns its final metrics and service vector.
func churn(t *testing.T, r *Router) (Metrics, []bool) {
	t.Helper()
	for i := 0; i < r.NumLCs(); i++ {
		r.SetOfferedLoad(i, 0.25*r.LC(i).Capacity())
	}
	inj, err := NewInjector(r, FaultRates{
		PDLU: 0.003, SRU: 0.004, LFE: 0.002, BC: 0.002, Bus: 0.002, Repair: 0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	k := r.Kernel()
	id := uint64(0)
	for step := 1; step <= 50; step++ {
		k.RunUntil(sim.Time(step * 200))
		for i := 0; i < r.NumLCs(); i++ {
			id++
			r.Deliver(pkt(id, i, (i+2)%r.NumLCs()))
		}
	}
	up := make([]bool, r.NumLCs())
	for i := range up {
		up[i] = r.CanDeliverCached(i)
	}
	return r.Metrics(), up
}

// TestBusThroughGraphBehaviorIdentical: the zero-value spec (the seed
// world) and every explicit bus spelling must produce the identical
// fault trajectory, metrics, and service vector — same RNG stream, same
// decisions, no graph overhead observable in behavior.
func TestBusThroughGraphBehaviorIdentical(t *testing.T) {
	base, baseUp := churn(t, newTopoRouter(t, topology.Spec{}, 9, 4, 77))
	for _, spelled := range []string{"bus", "BUS"} {
		m, up := churn(t, newTopoRouter(t, topology.Spec{Kind: spelled}, 9, 4, 77))
		if !reflect.DeepEqual(m, base) {
			t.Fatalf("kind %q diverged from the zero spec:\nbase %+v\ngot  %+v", spelled, base, m)
		}
		for i := range up {
			if up[i] != baseUp[i] {
				t.Fatalf("kind %q: CanDeliver(%d) = %v, zero spec says %v", spelled, i, up[i], baseUp[i])
			}
		}
	}
}

// TestCanDeliverCachedAllocFreeAllTopologies pins the memoized service
// predicate to zero allocations per poll on every topology — including
// polls that cross a topology-version bump, which trigger the graph's
// component-label rebuild into its construction-time buffers.
func TestCanDeliverCachedAllocFreeAllTopologies(t *testing.T) {
	skipUnderRace(t)
	specs := map[string]topology.Spec{
		"bus":      {},
		"crossbar": {Kind: "crossbar"},
		"mesh":     {Kind: "mesh"},
		"fattree":  {Kind: "fattree"},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			r := newTopoRouter(t, spec, 9, 4, 5)
			settle(r)
			poll := func() {
				for i := 0; i < r.NumLCs(); i++ {
					r.CanDeliverCached(i)
				}
			}
			poll() // warm the memo slice
			if n := testing.AllocsPerRun(500, poll); n != 0 {
				t.Fatalf("steady-state CanDeliverCached allocates %v per sweep, want 0", n)
			}
			g := r.Topology()
			if g.Units() == 0 {
				return
			}
			// Fault churn: each run fails a unit, polls (forcing a memo
			// miss and a reachability rebuild), repairs, and polls again.
			u := 0
			churnPoll := func() {
				r.FailTopoUnit(u % g.Units())
				poll()
				r.RepairTopoUnit(u % g.Units())
				poll()
				u++
			}
			churnPoll() // warm the repair path
			if n := testing.AllocsPerRun(200, churnPoll); n != 0 {
				t.Fatalf("fault-churn CanDeliverCached allocates %v per cycle, want 0", n)
			}
		})
	}
}

// TestGraphDeliveryAllocFree extends the seed's zero-alloc delivery gate
// to the non-bus topologies: the graph reachability consults on the
// packet path (data-plane pre-check, spare-plane guards) must stay
// allocation-free.
func TestGraphDeliveryAllocFree(t *testing.T) {
	skipUnderRace(t)
	for _, kind := range []string{"crossbar", "mesh", "fattree"} {
		t.Run(kind, func(t *testing.T) {
			r := newTopoRouter(t, topology.Spec{Kind: kind}, 6, 3, 5)
			settle(r)
			p := packet.Get()
			defer packet.Release(p)
			id := uint64(0)
			deliver := func() {
				for dst := 1; dst < 4; dst++ {
					id++
					*p = packet.Packet{
						ID:    id,
						SrcLC: 0,
						DstIP: workload.PrefixFor(dst) | 0x123,
						DstLC: -1,
						Proto: packet.ProtoEthernet,
						Bytes: 1500,
					}
					if rep := r.Deliver(p); rep.Kind != PathFabric {
						t.Fatalf("fault-free delivery took %v", rep.Kind)
					}
				}
			}
			for i := 0; i < 16; i++ {
				deliver()
			}
			if n := testing.AllocsPerRun(200, deliver); n != 0 {
				t.Fatalf("steady-state Deliver on %s allocates %v per 3 packets, want 0", kind, n)
			}
		})
	}
}
