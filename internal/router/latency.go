package router

import (
	"repro/internal/linecard"
	"repro/internal/packet"
)

// Latency accounting for the packet path. All times are in the router's
// time unit (seconds under the default configuration). The model charges:
//
//   - a fixed per-unit processing time for each LC functional unit the
//     packet traverses (PIU, PDLU, SRU, LFE);
//   - the fabric serialization of every cell at the fabric's current
//     capacity (degraded fabrics are slower, per fabric.CellDelay);
//   - EIB data-line transfer time at the flow's promised rate for every
//     EIB hop the path takes;
//   - one control-line round trip (2 slots) for a remote lookup.
const (
	// unitProcessing is the per-functional-unit processing time: 1 µs,
	// the right order for early-2000s linecard pipelines.
	unitProcessing = 1e-6
)

// pathLatency computes the latency of a delivered packet from its path
// report. It is called by Deliver after the path is decided.
func (r *Router) pathLatency(rep *PathReport, p *packet.Packet) float64 {
	if rep.Kind == PathDropped {
		return 0
	}
	bits := float64(p.Bytes * 8)

	// Functional units on the ingress side: PIU (+PDLU under DRA) + SRU
	// + LFE, wherever they physically ran.
	units := 3.0
	if r.cfg.Arch == linecard.DRA {
		units++
	}
	// Egress side: SRU + (PDLU) + PIU.
	units += 2
	if r.cfg.Arch == linecard.DRA {
		units++
	}
	lat := units * unitProcessing

	// Remote lookup: REQ_L/REP_L round trip on the control lines.
	if rep.RemoteLookup >= 0 && r.bus != nil {
		lat += 2 * r.bus.Config().CtrlSlot
	}

	// Fabric serialization: per-cell delay at current capacity for every
	// cell, pipelined (one cell in flight at a time per flow in this
	// model, so the packet completes after Cells × delay).
	if rep.Cells > 0 {
		lat += float64(rep.Cells) * r.fab.CellDelay()
	}

	// EIB hops: ingress coverage, egress direct/SRU coverage, egress
	// inter relay, or full fallback each move the packet's bits over the
	// shared data lines once.
	hops := 0
	if rep.IngressVia >= 0 {
		hops++
	}
	switch rep.Kind {
	case PathEgressDirect, PathEgressSRUCover, PathEgressInter, PathEIBFallback:
		hops++
	}
	if hops > 0 && r.bus != nil {
		rate := r.eibEffectiveRate()
		if rate > 0 {
			lat += float64(hops) * bits / rate
		}
	}
	return lat
}

// eibEffectiveRate returns the data-line rate a flow currently sees: the
// full capacity shared by the promise formula when LPs are oversubscribed.
func (r *Router) eibEffectiveRate() float64 {
	capacity := r.bus.Config().DataCapacity
	total := r.bus.TotalAsked()
	if total <= capacity || total == 0 {
		return capacity
	}
	// Under oversubscription a flow is served at its scaled share; use
	// the aggregate-preserving effective rate capacity/Σ · ask ≈
	// capacity/β for accounting.
	n := r.bus.ActiveLPs()
	if n == 0 {
		return capacity
	}
	return capacity / float64(n)
}
