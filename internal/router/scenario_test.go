package router

import (
	"strings"
	"testing"

	"repro/internal/linecard"
)

// TestScenarioMultiPhaseOutage walks one coherent outage story through
// the router and asserts the whole service timeline — the integration
// test for the coverage machinery.
func TestScenarioMultiPhaseOutage(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	var sc Scenario
	sc.Fail(100, 0, linecard.SRU). // LC0 degraded, covered
					Fail(200, 1, linecard.SRU). // the (likely) coverer degrades too
					FailBus(300).               // EIB lines cut: both uncovered
					RepairBus(400).             // coverage returns
					Fail(500, 0, linecard.PIU). // LC0's link dies: uncoverable
					Repair(600, 0).             // LC0 fully repaired
					Repair(700, 1)              // LC1 fully repaired

	samples := sc.Play(r)
	if len(samples) != 7 {
		t.Fatalf("samples = %d", len(samples))
	}
	expectUp := func(i int, lc int, want bool) {
		t.Helper()
		if samples[i].Up[lc] != want {
			t.Fatalf("step %d (%s): LC%d up = %v, want %v\n%s",
				i, samples[i].Label, lc, samples[i].Up[lc], want, TimelineString(samples))
		}
	}
	expectUp(0, 0, true)  // SRU covered
	expectUp(1, 0, true)  // still covered (another peer)
	expectUp(1, 1, true)  // LC1 covered as well
	expectUp(2, 0, false) // bus down: coverage gone
	expectUp(2, 1, false)
	expectUp(2, 2, true) // healthy LCs unaffected
	expectUp(3, 0, true) // bus repaired
	expectUp(3, 1, true)
	expectUp(4, 0, false) // PIU failure is final
	expectUp(5, 0, true)  // repair restores LC0
	expectUp(6, 1, true)

	// Coverage bindings must re-form after the bus repair.
	if samples[3].Covers[0] < 0 || samples[3].Covers[1] < 0 {
		t.Fatalf("bindings missing after bus repair:\n%s", TimelineString(samples))
	}
	// And disappear after full repair.
	if samples[6].Covers[0] != -1 || samples[6].Covers[1] != -1 {
		t.Fatalf("bindings remain after repair:\n%s", TimelineString(samples))
	}
}

func TestScenarioFabricRedundancyStory(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	var sc Scenario
	sc.FailFabricCard(10, 0). // absorbed by the spare
					FailFabricCard(20, 1).   // capacity degraded but alive
					RepairFabricCard(30, 0). // back to full
					FailFabricPort(40, 2)    // LC2's port dies: EIB fallback keeps it up

	samples := sc.Play(r)
	for i, s := range samples {
		for lc := 0; lc < 4; lc++ {
			if !s.Up[lc] {
				t.Fatalf("step %d (%s): LC%d down — fabric faults must not kill DRA service", i, s.Label, lc)
			}
		}
	}
	if r.Fabric().CapacityFraction() != 1 {
		t.Fatal("fabric capacity not restored")
	}
	// The BDR router loses LC2's service on the same port fault.
	b := newBDRRouter(t, 4)
	var sb Scenario
	sb.FailFabricPort(40, 2)
	bs := sb.Play(b)
	if bs[0].Up[2] {
		t.Fatal("BDR LC2 survived a fabric port failure")
	}
}

func TestScenarioOrderingAndValidation(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	var sc Scenario
	// Steps added out of order are executed in time order.
	sc.Repair(200, 0)
	sc.Fail(100, 0, linecard.SRU)
	samples := sc.Play(r)
	if !strings.Contains(samples[0].Label, "fail") || !strings.Contains(samples[1].Label, "repair") {
		t.Fatalf("steps not sorted: %v, %v", samples[0].Label, samples[1].Label)
	}
	if !samples[1].Up[0] {
		t.Fatal("final state should be healthy")
	}
}

func TestScenarioNilActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Scenario{}).At(1, "bad", nil)
}

func TestScenarioPastStepPanics(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	r.Kernel().RunUntil(1000)
	var sc Scenario
	sc.Fail(10, 0, linecard.SRU)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sc.Play(r)
}

func TestTimelineStringFormat(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	var sc Scenario
	sc.Fail(100, 0, linecard.SRU)
	out := TimelineString(sc.Play(r))
	if !strings.Contains(out, "fail LC0 SRU") || !strings.Contains(out, "up: 1 1 1 1") {
		t.Fatalf("timeline format:\n%s", out)
	}
}
