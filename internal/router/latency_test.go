package router

import (
	"testing"

	"repro/internal/linecard"
)

func TestLatencyPositiveAndRecorded(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	p := pkt(1, 0, 4)
	rep := r.Deliver(p)
	if rep.Latency <= 0 {
		t.Fatalf("latency = %g", rep.Latency)
	}
	if p.Delivered != p.Arrived+rep.Latency {
		t.Fatal("packet Delivered timestamp not set")
	}
	if m := r.Metrics(); m.LatencySum != rep.Latency {
		t.Fatalf("LatencySum = %g, want %g", m.LatencySum, rep.Latency)
	}
}

func TestLatencyDropIsZero(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(4, linecard.PIU)
	settle(r)
	rep := r.Deliver(pkt(1, 0, 4))
	if rep.Kind != PathDropped || rep.Latency != 0 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestLatencyEIBPathCostsMore(t *testing.T) {
	// The same flow before and after an ingress SRU failure: the EIB
	// detour must add delay (two extra transfers over shared lines).
	r := newDRARouter(t, 6, 3)
	base := r.Deliver(pkt(1, 0, 4)).Latency
	r.FailComponent(0, linecard.SRU)
	settle(r)
	covered := r.Deliver(pkt(2, 0, 4)).Latency
	if covered <= base {
		t.Fatalf("EIB path latency %g not above fabric path %g", covered, base)
	}
}

func TestLatencyScalesWithPacketSize(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	small := pkt(1, 0, 4)
	small.Bytes = 64
	big := pkt(2, 0, 4)
	big.Bytes = 1500
	ls := r.Deliver(small).Latency
	lb := r.Deliver(big).Latency
	if lb <= ls {
		t.Fatalf("big packet latency %g not above small %g", lb, ls)
	}
}

func TestLatencyDegradedFabricSlower(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	base := r.Deliver(pkt(1, 0, 4)).Latency
	// Knock out two fabric cards (one spare + one active): capacity
	// drops, per-cell delay rises.
	r.Fabric().FailCard(0)
	r.Fabric().FailCard(1)
	slow := r.Deliver(pkt(2, 0, 4)).Latency
	if slow <= base {
		t.Fatalf("degraded fabric latency %g not above %g", slow, base)
	}
}

func TestLatencyRemoteLookupAddsControlRTT(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	base := r.Deliver(pkt(1, 0, 4)).Latency
	r.FailComponent(0, linecard.LFE)
	settle(r)
	remote := r.Deliver(pkt(2, 0, 4)).Latency
	want := base + 2*r.Bus().Config().CtrlSlot
	if diff := remote - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("remote-lookup latency %g, want %g", remote, want)
	}
}
