package router

import (
	"repro/internal/eib"
	"repro/internal/linecard"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file implements the DRA coverage logic: the pure service predicate
// used by dependability analysis, and the event-driven establishment and
// release of EIB coverage bindings that the packet path consumes.

// CanDeliver reports whether LC i can currently provide packet delivery
// service — the definition of "operational" in the paper's Markov models.
//
// Under BDR any component failure takes the LC down. Under DRA:
//
//   - a PIU failure is not coverable (the external link terminates there);
//   - the data plane must reach the LC (fabric operational, port up, and
//     the topology's data plane attaching it to at least one peer) or the
//     EIB must be able to carry the LC's traffic;
//   - a PDLU failure needs a healthy same-protocol PDLU on a spare-plane-
//     reachable peer;
//   - an SRU failure needs a healthy PI path on such a peer;
//   - an LFE failure needs any healthy LFE on such a peer;
//   - all coverage runs over the EIB, so the EIB lines, LC i's own bus
//     controller, and the topology's spare plane must connect whenever
//     coverage is needed.
//
// On the bus topology every plane query is constant-true, so the
// predicate reduces exactly to the paper's bus-specific checks.
func (r *Router) CanDeliver(i int) bool {
	lc := r.lcs[i]
	if !lc.Healthy(linecard.PIU) {
		return false
	}
	intact := lc.LocalIngressPath() && lc.LocalEgressPath()
	dataUp := r.fab.Operational() && r.fab.PortUp(i) && r.topo.Up(topology.PlaneData, i)
	if r.cfg.Arch == linecard.BDR {
		return intact && dataUp
	}
	if intact && dataUp {
		return true
	}
	// Coverage is needed: EIB lines, own bus controller, and the spare
	// plane's attachment must all work.
	if r.bus.Failed() || !lc.OnEIB() || !r.topo.Up(topology.PlaneSpare, i) {
		return false
	}
	if lc.Failed(linecard.PDLU) && !r.existsPeer(i, func(p *linecard.LC) bool {
		return p.CanCoverPDLU(lc.Protocol()) && r.policy.Covers(r.topo, i, p.ID())
	}) {
		return false
	}
	if lc.Failed(linecard.SRU) && !r.existsPeer(i, func(p *linecard.LC) bool {
		return p.CanCoverPI() && r.policy.Covers(r.topo, i, p.ID())
	}) {
		return false
	}
	if lc.Failed(linecard.LFE) && !r.existsPeer(i, func(p *linecard.LC) bool {
		return p.CanCoverLookup() && r.policy.Covers(r.topo, i, p.ID())
	}) {
		return false
	}
	// Fabric-side faults (dead port, dead fabric, severed data plane) are
	// absorbed by the EIB data lines as long as the LC is on the bus and
	// the spare plane reaches it, which was checked above.
	return true
}

// deliverEntry memoizes one LC's CanDeliver verdict against the fault
// state it was computed under.
type deliverEntry struct {
	router uint64
	fabric uint64
	bus    uint64
	topo   uint64
	valid  bool
	up     bool
}

// CanDeliverCached is CanDeliver behind a fault-state memo: the verdict is
// recomputed only when the router's coverage state, the fabric, the bus,
// or the topology graph has changed since the last call. Monte-Carlo
// loops poll the predicate after every kernel event, almost all of which
// leave the fault state untouched; the memo turns those polls into four
// integer compares.
//
// The cache is sound as long as fault state is mutated through the Router,
// Fabric, and Bus entry points (FailComponent, FailCard, Fail,
// FailTopoUnit, ...), which is true for the injector and the chaos
// engine. Code that pokes linecard component state directly must use
// CanDeliver.
func (r *Router) CanDeliverCached(i int) bool {
	if r.deliverCache == nil {
		r.deliverCache = make([]deliverEntry, len(r.lcs))
	}
	var busVer uint64
	if r.bus != nil {
		busVer = r.bus.Version()
	}
	e := &r.deliverCache[i]
	if e.valid && e.router == r.faultVer && e.fabric == r.fab.Version() && e.bus == busVer && e.topo == r.topo.Version() {
		return e.up
	}
	up := r.CanDeliver(i)
	*e = deliverEntry{router: r.faultVer, fabric: r.fab.Version(), bus: busVer, topo: r.topo.Version(), valid: true, up: up}
	return up
}

// existsPeer reports whether any other LC satisfies the predicate.
func (r *Router) existsPeer(self int, ok func(*linecard.LC) bool) bool {
	for j, p := range r.lcs {
		if j != self && ok(p) {
			return true
		}
	}
	return false
}

// OperationalLCs counts LCs whose service is up.
func (r *Router) OperationalLCs() int {
	n := 0
	for i := range r.lcs {
		if r.CanDeliver(i) {
			n++
		}
	}
	return n
}

// --- Fault and repair entry points ---

// FailComponent marks component c of LC i failed and reconciles coverage
// bindings. Under DRA a BusController failure detaches the LC's bus
// controller.
func (r *Router) FailComponent(i int, c linecard.Component) {
	lc := r.lcs[i]
	if lc.Failed(c) {
		return
	}
	lc.Fail(c)
	r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.Fault, LC: i, Peer: -1, Detail: c.String()})
	if c == linecard.BusController && r.ctrl != nil {
		r.ctrl[i].Detach()
	}
	r.reconcileCoverage()
}

// RepairComponent restores component c of LC i.
func (r *Router) RepairComponent(i int, c linecard.Component) {
	lc := r.lcs[i]
	if !lc.Failed(c) {
		return
	}
	before := 0
	if r.inv != nil {
		before = r.failedUnits()
	}
	lc.Repair(c)
	if r.inv != nil {
		r.repairMonotonic("RepairComponent", before, r.failedUnits())
	}
	r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.Repair, LC: i, Peer: -1, Detail: c.String()})
	if c == linecard.BusController && r.ctrl != nil {
		r.ctrl[i].Reattach()
	}
	r.reconcileCoverage()
}

// RepairLC restores every component of LC i — the paper's repair process
// replaces all failed units in one action.
func (r *Router) RepairLC(i int) {
	lc := r.lcs[i]
	wasBC := lc.Failed(linecard.BusController)
	before := 0
	if r.inv != nil {
		before = r.failedUnits()
	}
	lc.RepairAll()
	if r.inv != nil {
		r.repairMonotonic("RepairLC", before, r.failedUnits())
	}
	r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.Repair, LC: i, Peer: -1, Detail: "all"})
	if wasBC && r.ctrl != nil {
		r.ctrl[i].Reattach()
	}
	r.reconcileCoverage()
}

// FailBus cuts the EIB lines.
func (r *Router) FailBus() {
	if r.bus == nil || r.bus.Failed() {
		return
	}
	r.bus.Fail()
	r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.BusDown, LC: -1, Peer: -1})
	// All LPs died with the bus.
	for i := range r.cover {
		r.cover[i] = nil
	}
	r.reconcileCoverage()
}

// FailTopoUnit marks topology unit u (an interconnect node or link)
// failed and reconciles coverage: bindings whose spare-plane path died
// with the unit are released, and data-plane reachability changes flow
// into the CanDeliver verdicts through the graph version. The bus
// topology has no units, so this is reachable only on the richer kinds.
func (r *Router) FailTopoUnit(u int) {
	if !r.topo.FailUnit(u) {
		return
	}
	r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.Fault, LC: -1, Peer: -1, Detail: r.topo.UnitName(u)})
	r.reconcileCoverage()
}

// RepairTopoUnit restores topology unit u.
func (r *Router) RepairTopoUnit(u int) {
	if r.topo.UnitFailed(u) {
		before := 0
		if r.inv != nil {
			before = r.failedUnits()
		}
		r.topo.RepairUnit(u)
		if r.inv != nil {
			r.repairMonotonic("RepairTopoUnit", before, r.failedUnits())
		}
		r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.Repair, LC: -1, Peer: -1, Detail: r.topo.UnitName(u)})
		r.reconcileCoverage()
	}
}

// RepairBus restores the EIB lines and re-establishes coverage.
func (r *Router) RepairBus() {
	if r.bus == nil || !r.bus.Failed() {
		return
	}
	before := 0
	if r.inv != nil {
		before = r.failedUnits()
	}
	r.bus.Repair()
	if r.inv != nil {
		r.repairMonotonic("RepairBus", before, r.failedUnits())
	}
	r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.BusUp, LC: -1, Peer: -1})
	r.reconcileCoverage()
}

// reconcileCoverage releases bindings that are no longer valid or needed
// and starts EIB handshakes for LCs that need new coverage. Handshakes
// complete after control-line delays; callers running the kernel observe
// bindings appearing shortly after the fault event, exactly as a real DRA
// would converge.
func (r *Router) reconcileCoverage() {
	r.faultVer++
	if r.cfg.Arch != linecard.DRA {
		return
	}
	for i := range r.lcs {
		need, comp, rate := r.coverageNeed(i)
		b := r.cover[i]
		if b != nil {
			valid := need && !r.bus.Failed() && r.lcs[i].OnEIB() &&
				r.qualifiesHealth(b.peer, i, comp, r.lcs[i].Protocol())
			if !valid {
				if b.lp != nil && !r.bus.Failed() {
					r.ctrl[i].Release(b.lp)
				}
				r.cover[i] = nil
				r.im.coverageRevocations.Inc()
				r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.CoverageDown, LC: i, Peer: b.peer})
			}
		}
		if need && r.cover[i] == nil && !r.bus.Failed() && r.lcs[i].OnEIB() &&
			r.topo.Up(topology.PlaneSpare, i) {
			r.requestCoverage(i, comp, rate, 0)
		}
	}
	r.updateCoverageGauge()
}

// updateCoverageGauge refreshes router_coverage_bandwidth from the fluid
// Section 5.3 computation. It runs only on fault-state transitions (never
// the packet hot path) and only when a registry is attached.
func (r *Router) updateCoverageGauge() {
	if r.im.coverageBW == nil {
		return
	}
	total := 0.0
	for _, bw := range r.CoverageBandwidth().PerFaulty {
		total += bw
	}
	r.im.coverageBW.Set(total)
}

// qualifiesHealth re-checks an existing binding peer's health and spare-
// plane reachability (without the capacity check — an established LP
// keeps its reservation).
func (r *Router) qualifiesHealth(peer, faulty int, comp linecard.Component, proto packet.Protocol) bool {
	if !r.policy.Covers(r.topo, faulty, peer) {
		return false
	}
	lc := r.lcs[peer]
	switch comp {
	case linecard.PDLU:
		return lc.CanCoverPDLU(proto)
	case linecard.SRU, linecard.LFE:
		return lc.CanCoverPI()
	default:
		return false
	}
}

// coverageNeed decides whether LC i needs a data-coverage binding, and for
// which failed component class. PDLU failures dominate (they constrain the
// peer choice the most); pure LFE failures are served per-lookup over the
// control lines and need no data binding.
func (r *Router) coverageNeed(i int) (need bool, comp linecard.Component, rate float64) {
	lc := r.lcs[i]
	if !lc.Healthy(linecard.PIU) {
		return false, 0, 0 // not coverable at all
	}
	rate = r.offered[i]
	if rate <= 0 {
		// A faulty LC still requests coverage for control traffic; use a
		// nominal 1% of capacity so LP bookkeeping stays meaningful.
		rate = lc.Capacity() * 0.01
	}
	switch {
	case lc.Failed(linecard.PDLU):
		return true, linecard.PDLU, rate
	case lc.Failed(linecard.SRU):
		return true, linecard.SRU, rate
	default:
		return false, 0, 0
	}
}

// requestCoverage runs the REQ_D/REP_D handshake for LC i and installs the
// binding (with an LP over the data lines) when a peer accepts. A failed
// handshake retries a bounded number of times while a qualified peer still
// exists — covering the race where the first REQ_D fired while the only
// candidate was mid-repair or busy with its own exchange.
func (r *Router) requestCoverage(i int, comp linecard.Component, rate float64, tries int) {
	lc := r.lcs[i]
	req := eib.ControlPacket{
		Rec:             eib.Broadcast,
		Direction:       eib.Forward,
		DataRate:        rate,
		Proto:           lc.Protocol(),
		FaultyComponent: comp,
	}
	r.m.CoverageRequests++
	r.im.coverageRequests.Inc()
	r.ctrl[i].RequestData(req, func(peer int) {
		// A fault may have landed while the handshake was in flight;
		// re-validate before committing. The capacity check must repeat
		// too: the donor admitted at REQ_D time, but a concurrent
		// handshake may have committed an LP against the same spare
		// capacity since — without this, two in-flight REQ_Ds can
		// oversubscribe ψ.
		if r.bus.Failed() || !r.qualifiesHealth(peer, i, comp, lc.Protocol()) || r.spare(peer) < rate {
			return
		}
		if r.cover[i] != nil {
			return // coverage raced; keep the first binding
		}
		lp, err := r.bus.OpenLP(i, peer, rate, eib.Forward)
		if err != nil {
			return
		}
		r.cover[i] = &binding{peer: peer, lp: lp}
		r.m.CoverageEstablished++
		r.im.coverageGrants.Inc()
		r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.CoverageUp, LC: i, Peer: peer})
		r.updateCoverageGauge()
	}, func(error) {
		r.m.CoverageFailed++
		r.im.coverageFailed.Inc()
		if tries >= 4 || r.bus.Failed() || !lc.OnEIB() {
			return
		}
		if !r.existsPeer(i, func(p *linecard.LC) bool {
			return r.qualifiesHealth(p.ID(), i, comp, lc.Protocol())
		}) {
			return
		}
		r.k.After(1e-6, func() {
			if need, c2, rt2 := r.coverageNeed(i); need && c2 == comp && r.cover[i] == nil {
				r.requestCoverage(i, comp, rt2, tries+1)
			}
		})
	})
}

// CoverPeer returns the LC currently covering LC i's data path, or -1.
func (r *Router) CoverPeer(i int) int {
	if b := r.cover[i]; b != nil {
		return b.peer
	}
	return -1
}
