package router

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Source drives a workload generator through the router on the simulation
// clock: packet arrivals become kernel events, so traffic interleaves
// properly with fault injection and EIB handshakes, and the achieved
// goodput becomes a time series rather than a one-shot count.
type Source struct {
	r   *Router
	gen workload.Generator
	// Injected and Delivered count this source's packets.
	Injected  uint64
	Delivered uint64
	// Goodput tracks time-weighted delivered bandwidth (bits per time
	// unit).
	goodbits float64
	started  sim.Time
	stopped  bool
	tw       stats.TimeWeighted
	// next holds the in-flight packet between schedule and fire; fireFn is
	// the arrival callback, built once so steady-state injection does not
	// allocate a closure per packet.
	next   *packet.Packet
	fireFn func()
}

// NewSource attaches a generator to the router. Call Start to begin
// injecting.
func (r *Router) NewSource(gen workload.Generator) *Source {
	s := &Source{r: r, gen: gen}
	s.fireFn = s.fire
	return s
}

// Start schedules the first arrival.
func (s *Source) Start() {
	s.started = s.r.k.Now()
	s.schedule()
}

// Stop halts injection after the current packet.
func (s *Source) Stop() { s.stopped = true }

func (s *Source) schedule() {
	dt, p := s.gen.Next()
	s.next = p
	s.r.k.After(sim.Time(dt), s.fireFn)
}

// fire is the arrival callback: it pushes the pending packet through the
// router, returns it to the packet pool, and schedules the next arrival.
func (s *Source) fire() {
	p := s.next
	s.next = nil
	if s.stopped {
		packet.Release(p)
		return
	}
	p.Arrived = float64(s.r.k.Now())
	rep := s.r.DeliverFrom(p)
	s.Injected++
	if rep.Kind != PathDropped {
		s.Delivered++
		s.goodbits += float64(p.Bytes * 8)
	}
	packet.Release(p)
	s.schedule()
}

// DeliveredFraction returns the fraction of injected packets delivered.
func (s *Source) DeliveredFraction() float64 {
	if s.Injected == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Injected)
}

// Goodput returns delivered bits per time unit since Start.
func (s *Source) Goodput() float64 {
	el := float64(s.r.k.Now() - s.started)
	if el <= 0 {
		return 0
	}
	return s.goodbits / el
}
