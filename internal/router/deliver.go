package router

import (
	"repro/internal/linecard"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/trace"
)

// PathKind labels how a packet traversed the router.
type PathKind uint8

// The delivery paths of the paper's Section 3.2.
const (
	// PathFabric is the fault-free path: ingress LC → fabric → egress LC.
	PathFabric PathKind = iota
	// PathIngressCover used a covering LC for the ingress PDLU or SRU
	// (Case 2): PIU/PDLU → EIB → peer → fabric → egress.
	PathIngressCover
	// PathEgressDirect is Case 3's same-protocol shortcut: the ingress
	// LC's PDLU sends packets over the EIB directly to the egress PIU.
	PathEgressDirect
	// PathEgressInter is Case 3 with an intermediate LC: cells cross the
	// fabric to LC_inter, whose PDLU forwards reassembled packets over
	// the EIB to the egress PIU.
	PathEgressInter
	// PathEgressSRUCover is Case 3 for a failed egress SRU: the ingress
	// LC sends the whole packet over the EIB to the egress PDLU.
	PathEgressSRUCover
	// PathEIBFallback carried the packet over the EIB because the fabric
	// (or a fabric port) was down.
	PathEIBFallback
	// PathDropped means the packet was lost.
	PathDropped
)

// String implements fmt.Stringer.
func (p PathKind) String() string {
	switch p {
	case PathFabric:
		return "fabric"
	case PathIngressCover:
		return "ingress-cover"
	case PathEgressDirect:
		return "egress-direct"
	case PathEgressInter:
		return "egress-inter"
	case PathEgressSRUCover:
		return "egress-sru-cover"
	case PathEIBFallback:
		return "eib-fallback"
	case PathDropped:
		return "dropped"
	default:
		return "unknown"
	}
}

// PathReport describes how one packet was handled.
type PathReport struct {
	Kind PathKind
	// IngressVia / EgressVia are covering LCs used on each side (-1 when
	// unused).
	IngressVia int
	EgressVia  int
	// RemoteLookup is the LC whose LFE answered the lookup (-1 for a
	// local lookup).
	RemoteLookup int
	// Cells is the number of fabric cells the packet was segmented into
	// (0 when the packet never crossed the fabric).
	Cells int
	// Latency is the modelled end-to-end delay of a delivered packet in
	// the router's time unit (0 for drops). See latency.go.
	Latency float64
	// DropReason is non-empty when Kind == PathDropped.
	DropReason string
}

// Deliver pushes one packet through the router under the current fault
// state, updating all counters, and returns the path taken. The packet's
// DstLC is resolved by lookup as a side effect.
func (r *Router) Deliver(p *packet.Packet) PathReport {
	packet.AssertLive(p)
	r.attempts++
	in := p.SrcLC
	if in < 0 || in >= len(r.lcs) {
		rep := PathReport{Kind: PathDropped, DropReason: "bad ingress LC"}
		r.m.drop(rep.DropReason)
		r.im.drops.With(rep.DropReason).Inc()
		r.completed++
		r.conservation()
		return rep
	}
	rep := PathReport{IngressVia: -1, EgressVia: -1, RemoteLookup: -1}
	inLC := r.lcs[in]

	// Ingress PIU: not coverable (the link terminates there).
	if !inLC.Healthy(linecard.PIU) {
		return r.dropped(&rep, "ingress PIU failed")
	}
	// Ingress port: an individual link cut is likewise uncoverable.
	if p.SrcPort >= 0 && p.SrcPort < inLC.Ports() && !inLC.PortUp(p.SrcPort) {
		return r.dropped(&rep, "ingress port down")
	}

	// Step 1: the lookup. Local LFE if healthy; otherwise a remote LFE
	// over the control lines (REQ_L/REP_L).
	dst, lrep, reason := r.resolve(in, p.DstIP)
	if reason != "" {
		return r.dropped(&rep, reason)
	}
	rep.RemoteLookup = lrep
	if lrep >= 0 {
		r.m.RemoteLookups++
		r.im.remoteLookups.Inc()
	}
	p.DstLC = dst
	out := dst
	outLC := r.lcs[out]

	// Hairpin: same-LC traffic never leaves the card.
	if out == in {
		if !inLC.LocalEgressPath() {
			return r.dropped(&rep, "hairpin egress path failed")
		}
		return r.delivered(&rep, PathFabric, out, p)
	}

	// Step 2: the ingress data path (Case 2).
	ingressNeedsCover := inLC.Failed(linecard.PDLU) || inLC.Failed(linecard.SRU)
	fromLC := in // the LC that will inject cells into the fabric
	if ingressNeedsCover {
		b := r.cover[in]
		if r.bus == nil || b == nil || r.bus.Failed() || !inLC.OnEIB() ||
			!r.topo.Connected(topology.PlaneSpare, in, b.peer) {
			return r.dropped(&rep, "ingress fault uncovered")
		}
		rep.IngressVia = b.peer
		fromLC = b.peer
		r.m.ViaEIB++
		r.im.detours.Inc()
	}

	// Step 3: egress constraints (Case 3) decide the downstream path.
	switch {
	case !outLC.Healthy(linecard.PIU):
		return r.dropped(&rep, "egress PIU failed")

	case outLC.LocalEgressPath():
		// Plain fabric path from fromLC to out.
		return r.viaFabric(&rep, p, fromLC, out, pickKind(rep, PathFabric))

	case r.cfg.Arch != linecard.DRA || r.bus == nil || r.bus.Failed() || !outLC.OnEIB() ||
		!r.topo.Up(topology.PlaneSpare, out):
		return r.dropped(&rep, "egress fault uncovered")

	case outLC.Failed(linecard.PDLU):
		// Case 3, PDLU: same-protocol ingress goes EIB-direct (when the
		// spare plane links the pair); otherwise find an intermediate LC
		// of the egress protocol.
		srcForDirect := r.lcs[fromLC]
		if srcForDirect.Protocol() == outLC.Protocol() && srcForDirect.Healthy(linecard.PDLU) &&
			r.topo.Connected(topology.PlaneSpare, fromLC, out) {
			r.m.ViaEIB++
			r.im.detours.Inc()
			return r.delivered(&rep, pickKind(rep, PathEgressDirect), out, p)
		}
		inter := r.pickInter(outLC.Protocol(), out, fromLC)
		if inter < 0 {
			return r.dropped(&rep, "no intermediate LC for egress PDLU")
		}
		rep.EgressVia = inter
		// Cells cross the fabric to inter, then the EIB to out.
		rep2 := r.viaFabric(&rep, p, fromLC, inter, pickKind(rep, PathEgressInter))
		if rep2.Kind != PathDropped {
			r.m.ViaEIB++
			r.im.detours.Inc()
			// The packet exits through the faulty egress card, not the
			// intermediate: move the per-LC delivery credit.
			r.lcs[inter].Delivered--
			r.lcs[out].Delivered++
		}
		return rep2

	case outLC.Failed(linecard.SRU):
		// Case 3, SRU: the sender keeps the packet whole and ships it
		// over the EIB to the egress PDLU. The sender's SRU must be
		// healthy to have produced the reassembled stream, and the spare
		// plane must link the pair.
		if !r.lcs[fromLC].Healthy(linecard.SRU) {
			return r.dropped(&rep, "no healthy SRU on sending side")
		}
		if !r.topo.Connected(topology.PlaneSpare, fromLC, out) {
			return r.dropped(&rep, "spare plane severed")
		}
		r.m.ViaEIB++
		r.im.detours.Inc()
		return r.delivered(&rep, pickKind(rep, PathEgressSRUCover), out, p)

	default:
		return r.dropped(&rep, "egress fault uncovered")
	}
}

// pickKind keeps the most specific path label when ingress coverage was
// already involved.
func pickKind(rep PathReport, kind PathKind) PathKind {
	if rep.IngressVia >= 0 && kind == PathFabric {
		return PathIngressCover
	}
	return kind
}

// resolve performs the lookup step: local LFE, or remote coverage.
func (r *Router) resolve(in int, addr uint32) (dst int, remoteVia int, dropReason string) {
	inLC := r.lcs[in]
	if inLC.Healthy(linecard.LFE) {
		d, err := inLC.Lookup(addr)
		if err != nil {
			return 0, -1, "no route"
		}
		return d, -1, ""
	}
	if r.cfg.Arch != linecard.DRA || r.bus == nil || r.bus.Failed() || !inLC.OnEIB() {
		return 0, -1, "LFE failed, no lookup coverage"
	}
	// Synchronous model of the REQ_L/REP_L exchange: the first healthy
	// spare-plane-reachable peer LFE answers. Control packets are
	// accounted on the bus.
	for j, peer := range r.lcs {
		if j == in || !peer.CanCoverLookup() || !r.policy.Covers(r.topo, in, j) {
			continue
		}
		d, err := peer.Lookup(addr)
		if err != nil {
			continue
		}
		peer.LookupsServedForPeers++
		return d, j, ""
	}
	return 0, -1, "LFE failed, no lookup coverage"
}

// pickInter chooses an intermediate LC for Case 3 PDLU coverage: it must
// speak the egress protocol, have healthy PDLU/SRU and bus controller,
// be data-plane-reachable from the sender (the fabric leg) and spare-
// plane-connected to the faulty egress (the EIB leg), and not be the
// faulty or sending LC. The lowest qualified index wins — deterministic,
// standing in for the first REP_D winner.
func (r *Router) pickInter(proto packet.Protocol, faulty, sender int) int {
	for j, lc := range r.lcs {
		if j == faulty || j == sender {
			continue
		}
		if lc.CanCoverPDLU(proto) && lc.Healthy(linecard.SRU) &&
			r.topo.Connected(topology.PlaneData, sender, j) &&
			r.topo.Connected(topology.PlaneSpare, j, faulty) {
			return j
		}
	}
	return -1
}

// viaFabric segments the packet and runs its cells across the fabric from
// src to dst, reassembling at the destination. If the fabric refuses (dead
// card or port) or the topology's data plane is severed between the two,
// DRA falls back to the EIB data lines.
func (r *Router) viaFabric(rep *PathReport, p *packet.Packet, src, dst int, kind PathKind) PathReport {
	if !r.topo.Connected(topology.PlaneData, src, dst) {
		// The interconnect itself is partitioned; no cell ever reaches the
		// fabric. DRA detours over the spare plane when it links the pair.
		if r.eibReaches(src, dst) {
			r.m.ViaEIB++
			r.im.detours.Inc()
			return r.delivered(rep, PathEIBFallback, dst, p)
		}
		return r.dropped(rep, "data plane severed")
	}
	tmp := *p
	tmp.SrcLC = src
	tmp.DstLC = dst
	r.cellBuf = packet.SegmentAppend(r.cellBuf[:0], &tmp)
	cells := r.cellBuf
	rep.Cells = len(cells)
	for _, c := range cells {
		if _, err := r.fab.Transfer(c); err != nil {
			// Case 1 failure beyond redundancy, or a dead fabric port:
			// DRA reroutes over the EIB; BDR loses the packet.
			r.reasm[dst].Abort(c.PacketID)
			if r.eibReaches(src, dst) {
				r.m.ViaEIB++
				r.im.detours.Inc()
				return r.delivered(rep, PathEIBFallback, dst, p)
			}
			return r.dropped(rep, "fabric transfer failed")
		}
		done, err := r.reasm[dst].Add(c)
		if err != nil {
			return r.dropped(rep, "reassembly error")
		}
		if c.Last && done == nil {
			return r.dropped(rep, "reassembly incomplete")
		}
	}
	return r.delivered(rep, kind, dst, p)
}

// eibReaches reports whether the EIB data lines can carry a detour from
// src to dst: DRA, healthy lines, both controllers attached, and the
// topology's spare plane connecting the pair.
func (r *Router) eibReaches(src, dst int) bool {
	return r.cfg.Arch == linecard.DRA && r.bus != nil && !r.bus.Failed() &&
		r.lcs[src].OnEIB() && r.lcs[dst].OnEIB() &&
		r.topo.Connected(topology.PlaneSpare, src, dst)
}

func (r *Router) delivered(rep *PathReport, kind PathKind, egress int, p *packet.Packet) PathReport {
	rep.Kind = kind
	rep.Latency = r.pathLatency(rep, p)
	p.Delivered = p.Arrived + rep.Latency
	r.m.Delivered++
	r.m.LatencySum += rep.Latency
	r.im.delivered.Inc()
	r.im.latency.Observe(rep.Latency)
	if kind == PathFabric {
		r.m.ViaFabric++
		r.im.viaFabric.Inc()
	}
	r.lcs[egress].Delivered++
	r.completed++
	r.conservation()
	return *rep
}

func (r *Router) dropped(rep *PathReport, reason string) PathReport {
	rep.Kind = PathDropped
	rep.DropReason = reason
	r.m.drop(reason)
	r.im.drops.With(reason).Inc()
	r.tr.Record(trace.Event{At: float64(r.k.Now()), Kind: trace.Drop, LC: -1, Peer: -1, Reason: reason})
	r.completed++
	r.conservation()
	return *rep
}

// DeliverFrom is Deliver plus ingress-side drop attribution: losses are
// charged to the ingress linecard's Dropped counter, giving per-LC loss
// rates for reports.
func (r *Router) DeliverFrom(p *packet.Packet) PathReport {
	rep := r.Deliver(p)
	if rep.Kind == PathDropped && p.SrcLC >= 0 && p.SrcLC < len(r.lcs) {
		r.lcs[p.SrcLC].Dropped++
		if r.im.lcDrops != nil {
			r.im.lcDrops.With(r.im.lcLabel[p.SrcLC], rep.DropReason).Inc()
		}
	}
	return rep
}
