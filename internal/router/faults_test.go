package router

import (
	"math"
	"testing"

	"repro/internal/linecard"
	"repro/internal/sim"
)

func TestPaperRates(t *testing.T) {
	fr := PaperRates(1.0 / 3)
	if math.Abs(fr.LambdaLC()-2e-5) > 1e-18 {
		t.Fatalf("λ_LC = %g, want 2e-5", fr.LambdaLC())
	}
	if math.Abs(fr.LambdaLPI()-1.4e-5) > 1e-18 {
		t.Fatalf("λ_LPI = %g, want 1.4e-5", fr.LambdaLPI())
	}
	if fr.PDLU != 6e-6 || fr.BC != 1e-6 || fr.Bus != 1e-6 {
		t.Fatalf("rates = %+v", fr)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultRatesValidate(t *testing.T) {
	bad := FaultRates{PDLU: -1}
	if bad.Validate() == nil {
		t.Fatal("negative rate accepted")
	}
	nan := FaultRates{SRU: math.NaN()}
	if nan.Validate() == nil {
		t.Fatal("NaN rate accepted")
	}
}

func TestInjectorProducesFaultsAtExpectedRate(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	rates := PaperRates(0) // no repair: each component fails at most once
	inj, err := NewInjector(r, rates)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	r.Kernel().Run(100000) // drain every lifetime; no repair → finite
	// Without repair every armed component fails exactly once:
	// 6 LCs × (PDLU+SRU+LFE+BC) + the bus = 25 failures.
	if inj.Faults != 25 {
		t.Fatalf("faults = %d, want 25", inj.Faults)
	}
	if inj.Repairs != 0 {
		t.Fatalf("repairs = %d", inj.Repairs)
	}
}

func TestInjectorTimeToFirstLCFaultMatchesExponential(t *testing.T) {
	// Mean time to first failure of a specific LC's units is
	// 1/λ_LC (+BC). Estimate over replications.
	const reps = 400
	sum := 0.0
	for rep := 0; rep < reps; rep++ {
		cfg := UniformConfig(linecard.DRA, 4, 2)
		cfg.Seed = uint64(rep + 1)
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.InstallUniformRoutes()
		rates := FaultRates{PDLU: 6e-6, SRU: 8e-6, LFE: 6e-6} // LC units only
		inj, err := NewInjector(r, rates)
		if err != nil {
			t.Fatal(err)
		}
		inj.Start()
		k := r.Kernel()
		for r.LC(0).FullyHealthy() && k.Step() {
		}
		sum += float64(k.Now())
	}
	mean := sum / reps
	want := 1 / 2e-5 // 50 000 h
	if math.Abs(mean-want)/want > 0.15 {
		t.Fatalf("mean time to LC0 fault = %g, want ~%g", mean, want)
	}
}

func TestInjectorRepairRestoresRouter(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	inj, err := NewInjector(r, PaperRates(1.0/3))
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	r.Kernel().RunUntil(3e6)
	if inj.Faults == 0 || inj.Repairs == 0 {
		t.Fatalf("faults=%d repairs=%d", inj.Faults, inj.Repairs)
	}
	// With μ = 1/3 h, the router is almost surely fully repaired at any
	// sampled instant a long time after the last event; drive repairs to
	// completion by advancing until no failures remain.
	for i := 0; i < 1000; i++ {
		all := true
		for j := 0; j < r.NumLCs(); j++ {
			if !r.LC(j).FullyHealthy() {
				all = false
			}
		}
		if all && !r.Bus().Failed() {
			break
		}
		if !r.Kernel().Step() {
			break
		}
	}
	for j := 0; j < r.NumLCs(); j++ {
		if !r.CanDeliver(j) {
			t.Fatalf("LC %d not delivering after repairs", j)
		}
	}
}

func TestInjectorAvailabilityOrderOfMagnitude(t *testing.T) {
	// With the paper's rates and μ = 1/3, a DRA LC's unavailability is
	// tiny; just assert the simulated availability of LC 0 exceeds the
	// BDR analytical availability (0.99994) — the headline claim.
	r := newDRARouter(t, 6, 3)
	inj, err := NewInjector(r, PaperRates(1.0/3))
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	k := r.Kernel()
	tracker := sim.NewUpDownTracker(k)
	// Sample CanDeliver(0) after every event.
	const horizon = 2e6
	for k.Now() < horizon {
		if !k.Step() {
			break
		}
		tracker.SetUp(r.CanDeliver(0))
	}
	a := tracker.Availability()
	if a < 0.99994 {
		t.Fatalf("simulated DRA availability %v not above BDR analytic 0.99994", a)
	}
}
