package router

import (
	"fmt"

	"repro/internal/eib"
	"repro/internal/invariant"
	"repro/internal/linecard"
)

// This file wires the runtime invariant wall into the router: structural
// checks swept from the kernel's after-step hook (the model is quiescent
// between events) plus inline checks at the two hot-path funnel points
// (delivery accounting, repair monotonicity). All checks are read-only
// and report through invariant.Checker — they never panic, so chaos
// campaigns keep running through a defect and record exactly what broke.

// AttachInvariants registers the router's invariant catalog with c and
// installs the sweep on the simulation kernel. A nil checker detaches
// (the hot-path hooks degrade to one nil branch each). The catalog:
//
//	lp-unique            — every open LP has a distinct initiator; an LC
//	                       never holds two data-line paths at once
//	ctr-agreement        — the distributed round-robin counters (β,
//	                       rotation) agree across all bus controllers,
//	                       tracked by a shadow arbiter mirroring LP churn
//	binding-lp           — every coverage binding's LP is live on the
//	                       bus with matching endpoints, and every LP
//	                       belongs to a binding (no orphan reservations)
//	coverage-spare       — ΣB_LC promised by a donor never exceeds its
//	                       spare capacity ψ = c − L·c
//	coverage-protocol    — a PDLU-fault binding pairs same-protocol LCs
//	                       with a healthy donor PDLU (paper Case 1)
//	packet-conservation  — every Deliver ends in exactly one of the
//	                       delivered/dropped funnels (inline)
//	repair-monotonic     — a repair action never grows the failed-unit
//	                       count (inline at the repair entry points)
func (r *Router) AttachInvariants(c *invariant.Checker) {
	r.inv = c
	if c == nil {
		r.k.SetAfterStep(nil)
		if r.bus != nil {
			r.bus.OnLP = nil
		}
		return
	}
	c.SetClock(func() float64 { return float64(r.k.Now()) })
	if r.bus != nil {
		lcs := make([]int, len(r.lcs))
		for i := range lcs {
			lcs[i] = i
		}
		arb := eib.NewArbiter(lcs)
		r.shadowArb = arb
		r.bus.OnLP = func(opened bool, lp *eib.LP) {
			if lp.Init < 0 || lp.Init >= len(r.lcs) {
				c.Report("lp-unique", fmt.Sprintf("LP %d has out-of-range initiator LC %d", lp.ID, lp.Init))
				return
			}
			if opened {
				if arb.Counters(lp.Init).ID() != 0 {
					c.Report("lp-unique", fmt.Sprintf("LC %d opened LP %d while already holding a data-line path", lp.Init, lp.ID))
					return
				}
				arb.Establish(lp.Init)
			} else if arb.Counters(lp.Init).ID() != 0 {
				arb.Release(lp.Init)
			}
		}
		c.Register("ctr-agreement", func() string {
			if err := arb.Consistent(); err != nil {
				return err.Error()
			}
			return ""
		})
		c.Register("lp-unique", r.checkLPUnique)
		c.Register("binding-lp", r.checkBindingLP)
		c.Register("coverage-spare", r.checkCoverageSpare)
		c.Register("coverage-protocol", r.checkCoverageProtocol)
	}
	r.k.SetAfterStep(c.Sweep)
}

// Invariants returns the attached checker (nil when none).
func (r *Router) Invariants() *invariant.Checker { return r.inv }

// checkLPUnique verifies no two open LPs share an initiator.
func (r *Router) checkLPUnique() string {
	seen := make(map[int]int) // initiator → LP id
	for _, lp := range r.bus.LPs() {
		if prev, dup := seen[lp.Init]; dup {
			return fmt.Sprintf("LC %d holds LPs %d and %d simultaneously", lp.Init, prev, lp.ID)
		}
		seen[lp.Init] = lp.ID
	}
	return ""
}

// checkBindingLP verifies bindings and bus LPs agree one-to-one.
func (r *Router) checkBindingLP() string {
	if r.bus.Failed() {
		// All LPs died with the lines; reconcileCoverage clears bindings.
		for i, b := range r.cover {
			if b != nil {
				return fmt.Sprintf("LC %d keeps a binding to LC %d across a bus failure", i, b.peer)
			}
		}
		return ""
	}
	live := make(map[int]*eib.LP)
	for _, lp := range r.bus.LPs() {
		live[lp.ID] = lp
	}
	bound := 0
	for i, b := range r.cover {
		if b == nil || b.lp == nil {
			continue
		}
		bound++
		lp, ok := live[b.lp.ID]
		if !ok {
			return fmt.Sprintf("LC %d's binding references LP %d which is not open on the bus", i, b.lp.ID)
		}
		if lp.Init != i || lp.Rec != b.peer {
			return fmt.Sprintf("LP %d endpoints (%d→%d) disagree with binding (%d→%d)", lp.ID, lp.Init, lp.Rec, i, b.peer)
		}
	}
	if bound != len(live) {
		return fmt.Sprintf("%d open LPs but %d coverage bindings (orphan data-line reservation)", len(live), bound)
	}
	return ""
}

// checkCoverageSpare verifies no donor has promised more bandwidth than
// its spare capacity ψ = c − L·c.
func (r *Router) checkCoverageSpare() string {
	for j := range r.lcs {
		promised := 0.0
		for _, lp := range r.bus.LPs() {
			if lp.Rec == j {
				promised += lp.Asked
			}
		}
		if psi := r.lcs[j].Capacity() - r.offered[j]; promised > psi {
			return fmt.Sprintf("LC %d promised %g over the EIB but has spare ψ=%g", j, promised, psi)
		}
	}
	return ""
}

// checkCoverageProtocol verifies PDLU-fault bindings obey the paper's
// Case 1 rule: the donor speaks the faulty LC's protocol and its own
// PDLU is healthy.
func (r *Router) checkCoverageProtocol() string {
	for i, b := range r.cover {
		if b == nil {
			continue
		}
		lc := r.lcs[i]
		if !lc.Failed(linecard.PDLU) {
			continue
		}
		peer := r.lcs[b.peer]
		if peer.Protocol() != lc.Protocol() {
			return fmt.Sprintf("LC %d (PDLU fault, %v) covered by LC %d speaking %v", i, lc.Protocol(), b.peer, peer.Protocol())
		}
		if !peer.Healthy(linecard.PDLU) {
			return fmt.Sprintf("LC %d (PDLU fault) covered by LC %d whose own PDLU is down", i, b.peer)
		}
	}
	return ""
}

// conservation is the inline delivery-funnel check: every Deliver call
// must end in exactly one of the delivered/dropped funnels.
func (r *Router) conservation() {
	if r.inv != nil && r.attempts != r.completed {
		r.inv.Report("packet-conservation",
			fmt.Sprintf("%d Deliver calls but %d funnel completions", r.attempts, r.completed))
	}
}

// repairMonotonic is the inline repair check: after must not exceed
// before (a repair action never grows the failed-unit count).
func (r *Router) repairMonotonic(action string, before, after int) {
	if r.inv != nil && after > before {
		r.inv.Report("repair-monotonic",
			fmt.Sprintf("%s grew failed units %d → %d", action, before, after))
	}
}

// failedUnits counts failed components across all LCs plus the EIB
// lines plus failed topology units — the fault-state magnitude the
// repair-monotonicity check watches.
func (r *Router) failedUnits() int {
	n := r.topo.FailedUnits()
	for _, lc := range r.lcs {
		n += len(lc.FailedComponents())
	}
	if r.bus != nil && r.bus.Failed() {
		n++
	}
	return n
}
