package router

import (
	"testing"

	"repro/internal/eib"
	"repro/internal/linecard"
)

// TestEIBProtocolConformance sniffs the control lines through a full
// coverage lifecycle and checks the wire sequence against Section 4 of
// the paper: a fault triggers REQ_D (broadcast, carrying the faulty
// component, protocol, and data rate), a candidate answers REP_D
// (addressed), and the repair tears the path down with REL_D carrying the
// LP id.
func TestEIBProtocolConformance(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.SetOfferedLoad(0, 0.15*r.LC(0).Capacity())
	var wire []eib.ControlPacket
	r.Bus().Sniff(func(p eib.ControlPacket) { wire = append(wire, p) })

	r.FailComponent(0, linecard.SRU)
	settle(r)
	r.RepairLC(0)
	settle(r)

	var reqd, repd, reld []eib.ControlPacket
	for _, p := range wire {
		switch p.Type {
		case eib.REQD:
			reqd = append(reqd, p)
		case eib.REPD:
			repd = append(repd, p)
		case eib.RELD:
			reld = append(reld, p)
		}
	}
	if len(reqd) == 0 || len(repd) == 0 || len(reld) == 0 {
		t.Fatalf("incomplete lifecycle on the wire: %d REQ_D, %d REP_D, %d REL_D", len(reqd), len(repd), len(reld))
	}

	// REQ_D: broadcast from the faulty LC with the full processing tier.
	q := reqd[0]
	if q.Init != 0 || q.Rec != eib.Broadcast {
		t.Fatalf("REQ_D addressing: %+v", q)
	}
	if q.FaultyComponent != linecard.SRU {
		t.Fatalf("REQ_D faulty component: %v", q.FaultyComponent)
	}
	if q.DataRate != 0.15*r.LC(0).Capacity() {
		t.Fatalf("REQ_D data rate: %g", q.DataRate)
	}
	if q.Proto != r.LC(0).Protocol() {
		t.Fatalf("REQ_D protocol: %v", q.Proto)
	}

	// REP_D: addressed back to the initiator from the eventual coverer.
	a := repd[0]
	if a.Rec != 0 {
		t.Fatalf("REP_D not addressed to the initiator: %+v", a)
	}
	if a.Init == 0 {
		t.Fatal("REP_D initiated by the faulty LC itself")
	}

	// REL_D: carries the LP id of the torn-down path.
	rel := reld[len(reld)-1]
	if rel.LPID <= 0 {
		t.Fatalf("REL_D without LP id: %+v", rel)
	}
	if rel.Init != 0 {
		t.Fatalf("REL_D initiated by %d, want the covered LC 0", rel.Init)
	}

	// Ordering: the REQ_D precedes its REP_D precedes the REL_D.
	idx := func(want eib.ControlType) int {
		for i, p := range wire {
			if p.Type == want {
				return i
			}
		}
		return -1
	}
	if !(idx(eib.REQD) < idx(eib.REPD) && idx(eib.REPD) < idx(eib.RELD)) {
		t.Fatalf("lifecycle out of order on the wire")
	}

	// Every sniffed frame survives the wire encoding round trip.
	for i, p := range wire {
		b := p.Marshal()
		got, err := eib.UnmarshalControl(b[:])
		if err != nil {
			t.Fatalf("frame %d unmarshal: %v", i, err)
		}
		if got.Type != p.Type || got.Init != p.Init || got.Rec != p.Rec {
			t.Fatalf("frame %d round trip mismatch", i)
		}
	}
}

// TestEIBProtocolLookupOnWire: an LFE fault's lookups travel as
// REQ_L/REP_L entirely over the control lines when driven through the
// controller API (the router's fast path models this synchronously; the
// protocol itself is exercised here end to end).
func TestEIBProtocolLookupOnWire(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	var wire []eib.ControlPacket
	r.Bus().Sniff(func(p eib.ControlPacket) { wire = append(wire, p) })

	r.FailComponent(0, linecard.LFE)
	settle(r)
	got := -1
	r.Controller(0).RequestLookup(0x0e000001 /* 14.0.0.1 → LC 4 */, func(egress int) { got = egress },
		func(err error) { t.Fatal(err) })
	settle(r)
	if got != 4 {
		t.Fatalf("lookup egress = %d, want 4", got)
	}
	var sawReq, sawRep bool
	for _, p := range wire {
		if p.Type == eib.REQL && p.LookupAddr == 0x0e000001 {
			sawReq = true
		}
		if p.Type == eib.REPL && p.Rec == 0 && p.LookupResult == 4 {
			sawRep = true
		}
	}
	if !sawReq || !sawRep {
		t.Fatalf("lookup exchange missing on the wire (REQ_L %v, REP_L %v)", sawReq, sawRep)
	}
}
