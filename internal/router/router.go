// Package router assembles the full executable router model: linecards,
// the redundant switching fabric, the route processor, and — under DRA —
// the enhanced internal bus with one bus controller per linecard. It
// implements the complete fault model of the paper's Section 3.2 (Cases
// 1–3), the coverage orchestration over the EIB, component fault injection
// with repair, and per-packet delivery with path accounting.
//
// The same router object serves three uses:
//
//   - packet mode: Deliver pushes individual packets along the exact path
//     the architecture dictates (fabric, EIB detour, remote lookup, ...);
//   - dependability mode: CanDeliver is the pure predicate "is this LC's
//     packet service up under the current fault state", sampled by the
//     Monte-Carlo reliability/availability estimator;
//   - fluid mode: CoverageBandwidth computes the bandwidth available to
//     faulty LCs under the EIB's promise formula, cross-checking the
//     paper's Section 5.3 analysis.
package router

import (
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/eib"
	"repro/internal/fabric"
	"repro/internal/forwarding"
	"repro/internal/invariant"
	"repro/internal/linecard"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Config describes a router instance.
type Config struct {
	Arch linecard.Arch
	// Protocols gives one entry per linecard; its length is the LC count
	// (the paper's N). The number of LCs sharing LC 0's protocol is the
	// paper's M.
	Protocols []packet.Protocol
	// PortsPerLC is the external port count per LC.
	PortsPerLC int
	// LCCapacity is c_LC in bits per time unit (the paper uses 10 Gbps).
	LCCapacity float64
	// Fabric configures the switching fabric; zero value selects
	// fabric.DefaultConfig.
	Fabric fabric.Config
	// Bus configures the EIB (DRA only); zero value selects
	// eib.DefaultBusConfig.
	Bus eib.BusConfig
	// Topology selects the interconnect graph the fabric and EIB are
	// structured over; the zero value is the paper's bus (both planes
	// perfect chassis-wide hubs, no interior failure modes).
	Topology topology.Spec
	// Policy decides which peers may extend spare-channel coverage over
	// the topology's spare plane; nil selects topology.DefaultPolicy.
	Policy topology.SparePolicy
	// Seed drives all stochastic behaviour (CSMA/CD backoff, fault
	// injection).
	Seed uint64
	// Source, when non-nil, supplies the router's RNG directly and Seed is
	// ignored. The Monte-Carlo engine uses this to hand each replication a
	// Jump-spaced stream from one master sequence.
	Source *xrand.Source
}

// UniformConfig is a convenience constructor for the paper's standard
// setup: N linecards of which the first M share protocol 0 and the rest
// cycle through other protocols, 10 Gbps capacity each.
func UniformConfig(arch linecard.Arch, n, m int) Config {
	if n < 2 {
		panic("router: need at least two LCs")
	}
	if m < 1 || m > n {
		panic("router: M must be within [1, N]")
	}
	protos := make([]packet.Protocol, n)
	for i := range protos {
		if i < m {
			protos[i] = packet.ProtoEthernet
		} else {
			// Spread the remaining LCs over the other protocols.
			protos[i] = packet.Protocol(1 + (i-m)%(packet.NumProtocols-1))
		}
	}
	return Config{
		Arch:       arch,
		Protocols:  protos,
		PortsPerLC: 4,
		LCCapacity: 10e9,
		Seed:       1,
	}
}

// Router is the executable router model.
type Router struct {
	cfg  Config
	k    *sim.Kernel
	rng  *xrand.Source
	lcs  []*linecard.LC
	fab  *fabric.Fabric
	rp   *forwarding.RouteProcessor
	bus  *eib.Bus          // nil under BDR
	ctrl []*eib.Controller // nil under BDR

	// topo is the interconnect graph both planes' reachability questions
	// are answered against; policy is the spare-channeling rule over its
	// spare plane. Never nil.
	topo   *topology.Graph
	policy topology.SparePolicy

	// cover[i] is the established data-coverage binding for LC i, nil
	// when LC i needs no coverage or none could be established.
	cover []*binding

	// offered[i] is the configured offered load of LC i in bits per time
	// unit, used by the coverage capacity checks (ψ = c − L·c).
	offered []float64

	reasm []*packet.Reassembler

	// cellBuf is the scratch segmentation buffer reused by viaFabric, so
	// the steady-state fabric path allocates nothing.
	cellBuf []packet.Cell

	// faultVer counts coverage reconciliations; together with the fabric
	// and bus versions it keys the CanDeliverCached memo (deliverCache).
	faultVer     uint64
	deliverCache []deliverEntry

	tr *trace.Recorder // nil unless SetTracer was called

	// inv is the runtime invariant wall (nil = disabled; every hook is
	// one branch). shadowArb mirrors LP churn for the counter-agreement
	// check. attempts/completed are the delivery-funnel conservation
	// counters.
	inv       *invariant.Checker
	shadowArb *eib.Arbiter
	attempts  uint64
	completed uint64

	m  Metrics
	im instruments
}

// instruments holds the router's resolved registry instruments. The
// zero value (all nil) is fully functional and nearly free: every hook
// on the packet hot path degrades to a nil-receiver branch, the same
// discipline as trace.Recorder.
type instruments struct {
	delivered     *metrics.Counter
	detours       *metrics.Counter // packets that used the EIB data lines
	viaFabric     *metrics.Counter
	remoteLookups *metrics.Counter
	latency       *metrics.Histogram

	drops   *metrics.CounterVec // by reason
	lcDrops *metrics.CounterVec // by ingress LC and reason (DeliverFrom)

	coverageRequests    *metrics.Counter
	coverageGrants      *metrics.Counter
	coverageRevocations *metrics.Counter
	coverageFailed      *metrics.Counter
	coverageBW          *metrics.Gauge

	// lcLabel caches per-LC label strings so the drop path does not
	// format integers.
	lcLabel []string
}

// SetMetrics resolves the router's instruments against reg and cascades
// to the layers it owns: the sim kernel and, under DRA, the EIB. The
// router-level families:
//
//	router_delivered_total / router_drops_total{reason}
//	router_lc_drops_total{lc,reason}   (ingress attribution, DeliverFrom)
//	router_detours_total               (packets using the EIB data lines)
//	router_via_fabric_total
//	router_remote_lookups_total
//	router_latency_seconds             (modelled delivery latency)
//	router_coverage_requests_total / router_coverage_grants_total /
//	router_coverage_revocations_total / router_coverage_failed_total
//	router_coverage_bandwidth          (ΣB_faulty over the EIB, bits/unit)
//
// A nil registry detaches nothing and is a no-op.
func (r *Router) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r.k.Instrument(reg)
	if r.bus != nil {
		r.bus.SetMetrics(reg)
	}
	im := &r.im
	im.delivered = reg.Counter("router_delivered_total", "Packets delivered end to end.")
	im.detours = reg.Counter("router_detours_total", "Packets that used the EIB data lines at least once.")
	im.viaFabric = reg.Counter("router_via_fabric_total", "Packets whose data path used only the fabric.")
	im.remoteLookups = reg.Counter("router_remote_lookups_total", "Lookups served by a peer LFE over the control lines.")
	im.latency = reg.Histogram("router_latency_seconds", "Modelled end-to-end delivery latency.",
		metrics.ExpBuckets(1e-6, 4, 12))
	im.drops = reg.CounterVec("router_drops_total", "Packets dropped, by cause.", "reason")
	im.lcDrops = reg.CounterVec("router_lc_drops_total", "Packets dropped, by ingress linecard and cause.", "lc", "reason")
	im.coverageRequests = reg.Counter("router_coverage_requests_total", "REQ_D coverage handshakes started.")
	im.coverageGrants = reg.Counter("router_coverage_grants_total", "Coverage bindings established over the EIB.")
	im.coverageRevocations = reg.Counter("router_coverage_revocations_total", "Coverage bindings released or invalidated.")
	im.coverageFailed = reg.Counter("router_coverage_failed_total", "Coverage handshakes that found no peer.")
	im.coverageBW = reg.Gauge("router_coverage_bandwidth", "Total bandwidth faulty LCs currently receive over the EIB.")
	im.lcLabel = make([]string, len(r.lcs))
	for i := range im.lcLabel {
		im.lcLabel[i] = strconv.Itoa(i)
	}
}

// binding records an established EIB coverage relationship.
type binding struct {
	peer int
	lp   *eib.LP
}

// New builds a router from the configuration.
func New(cfg Config) (*Router, error) {
	n := len(cfg.Protocols)
	if n < 2 {
		return nil, fmt.Errorf("router: need at least two linecards, got %d", n)
	}
	if cfg.PortsPerLC <= 0 {
		cfg.PortsPerLC = 4
	}
	if cfg.LCCapacity <= 0 {
		cfg.LCCapacity = 10e9
	}
	if cfg.Fabric.Ports == 0 {
		cfg.Fabric = fabric.DefaultConfig(n)
	}
	if cfg.Fabric.Ports != n {
		return nil, fmt.Errorf("router: fabric has %d ports for %d LCs", cfg.Fabric.Ports, n)
	}
	def := eib.DefaultBusConfig()
	if cfg.Bus.DataCapacity == 0 {
		cfg.Bus.DataCapacity = def.DataCapacity
	}
	if cfg.Bus.CtrlSlot == 0 {
		cfg.Bus.CtrlSlot = def.CtrlSlot
	}
	if cfg.Bus.MaxBackoffExp == 0 {
		cfg.Bus.MaxBackoffExp = def.MaxBackoffExp
	}

	topo, err := topology.New(cfg.Topology, n)
	if err != nil {
		return nil, fmt.Errorf("router: topology: %w", err)
	}
	if cfg.Policy == nil {
		cfg.Policy = topology.DefaultPolicy()
	}

	rng := cfg.Source
	if rng == nil {
		rng = xrand.New(cfg.Seed)
	}
	r := &Router{
		cfg:     cfg,
		k:       sim.NewKernel(),
		rng:     rng,
		rp:      forwarding.NewRouteProcessor(),
		topo:    topo,
		policy:  cfg.Policy,
		cover:   make([]*binding, n),
		offered: make([]float64, n),
		reasm:   make([]*packet.Reassembler, n),
	}
	fab, err := fabric.New(cfg.Fabric)
	if err != nil {
		return nil, err
	}
	r.fab = fab

	for i := 0; i < n; i++ {
		lc, err := linecard.New(linecard.Config{
			ID:       i,
			Arch:     cfg.Arch,
			Protocol: cfg.Protocols[i],
			Ports:    cfg.PortsPerLC,
			Capacity: cfg.LCCapacity,
		})
		if err != nil {
			return nil, err
		}
		r.lcs = append(r.lcs, lc)
		r.rp.Subscribe(lc.SetTable)
		r.reasm[i] = packet.NewReassembler()
	}

	if cfg.Arch == linecard.DRA {
		bus, err := eib.NewBus(r.k, r.rng.Split(), cfg.Bus)
		if err != nil {
			return nil, err
		}
		r.bus = bus
		r.ctrl = make([]*eib.Controller, n)
		for i := 0; i < n; i++ {
			r.ctrl[i] = eib.NewController(bus, i)
			r.wireController(i)
		}
	}
	return r, nil
}

// wireController installs the processing-tier policy callbacks for LC i's
// bus controller.
func (r *Router) wireController(i int) {
	lc := r.lcs[i]
	c := r.ctrl[i]
	c.AcceptData = func(p eib.ControlPacket) bool {
		return r.qualifies(i, p.Init, p.FaultyComponent, p.Proto, p.DataRate)
	}
	c.ServeLookup = func(addr uint32) (int, bool) {
		if !lc.CanCoverLookup() {
			return 0, false
		}
		egress, err := lc.Lookup(addr)
		if err != nil {
			return 0, false
		}
		lc.LookupsServedForPeers++
		return egress, true
	}
	c.OnRelease = func(p eib.ControlPacket) {
		// Nothing to tear down per-stream in the fluid model; counters
		// only.
		r.m.ReleasesSeen++
	}
}

// qualifies is the processing-tier admission check an LC applies to a
// REQ_D: spare-plane reachability (the topology policy), component
// health, protocol compatibility for PDLU faults, and spare capacity
// ψ = c_LC − L·c_LC against already-promised coverage.
func (r *Router) qualifies(self, faulty int, comp linecard.Component, proto packet.Protocol, rate float64) bool {
	if !r.policy.Covers(r.topo, faulty, self) {
		return false
	}
	lc := r.lcs[self]
	switch comp {
	case linecard.PDLU:
		if !lc.CanCoverPDLU(proto) {
			return false
		}
	case linecard.SRU, linecard.LFE:
		if !lc.CanCoverPI() {
			return false
		}
	default:
		return false
	}
	return r.spare(self) >= rate
}

// spare returns ψ for LC i minus coverage bandwidth it has already
// promised to other LCs.
func (r *Router) spare(i int) float64 {
	psi := r.lcs[i].Capacity() - r.offered[i]
	for _, b := range r.cover {
		if b != nil && b.peer == i && b.lp != nil {
			psi -= b.lp.Asked
		}
	}
	return psi
}

// SetTracer attaches a structured event recorder; nil detaches it. The
// recorder's clock is wired to the simulation kernel, so every event —
// including ones recorded with a zero At by older call sites — carries a
// sim timestamp.
func (r *Router) SetTracer(t *trace.Recorder) {
	r.tr = t
	t.SetClock(func() float64 { return float64(r.k.Now()) })
}

// Tracer returns the attached recorder (nil when tracing is off).
func (r *Router) Tracer() *trace.Recorder { return r.tr }

// Kernel exposes the simulation kernel.
func (r *Router) Kernel() *sim.Kernel { return r.k }

// NumLCs returns N.
func (r *Router) NumLCs() int { return len(r.lcs) }

// LC returns linecard i.
func (r *Router) LC(i int) *linecard.LC { return r.lcs[i] }

// Fabric returns the switching fabric.
func (r *Router) Fabric() *fabric.Fabric { return r.fab }

// Topology returns the interconnect graph. Fault state mutated through
// it directly bypasses coverage reconciliation; use FailTopoUnit and
// RepairTopoUnit instead.
func (r *Router) Topology() *topology.Graph { return r.topo }

// Policy returns the active spare-channeling policy.
func (r *Router) Policy() topology.SparePolicy { return r.policy }

// Bus returns the EIB (nil under BDR).
func (r *Router) Bus() *eib.Bus { return r.bus }

// Controller returns LC i's bus controller (nil under BDR).
func (r *Router) Controller(i int) *eib.Controller {
	if r.ctrl == nil {
		return nil
	}
	return r.ctrl[i]
}

// RouteProcessor returns the RP.
func (r *Router) RouteProcessor() *forwarding.RouteProcessor { return r.rp }

// SetOfferedLoad records LC i's offered load (bits per time unit), the L·c
// of the paper's performance analysis. It bounds the spare capacity the LC
// will promise to peers.
func (r *Router) SetOfferedLoad(i int, bits float64) {
	if bits < 0 || bits > r.lcs[i].Capacity() {
		panic(fmt.Sprintf("router: offered load %g outside [0, capacity]", bits))
	}
	r.offered[i] = bits
}

// OfferedLoad returns LC i's configured offered load.
func (r *Router) OfferedLoad(i int) float64 { return r.offered[i] }

// InstallRoutes announces the given routes and distributes tables to all
// LFEs.
func (r *Router) InstallRoutes(specs []workload.RouteSpec) {
	for _, s := range specs {
		r.rp.Announce(forwarding.Route{
			Prefix: forwarding.MakePrefix(s.Addr, s.Len),
			NextLC: s.NextLC,
		})
	}
	r.rp.Distribute()
}

// InstallUniformRoutes installs the workload package's standard /8-per-LC
// route scheme.
func (r *Router) InstallUniformRoutes() {
	r.InstallRoutes(workload.Routes(len(r.lcs)))
}

// Metrics returns a snapshot of the router's counters.
func (r *Router) Metrics() Metrics { return r.m }

// MetricsJSON renders the counter snapshot as JSON for ops tooling.
func (r *Router) MetricsJSON() ([]byte, error) {
	return json.MarshalIndent(r.m, "", "  ")
}

// Metrics aggregates router-wide counters.
type Metrics struct {
	Delivered     uint64
	Dropped       uint64
	ViaFabric     uint64 // packets whose data path used only the fabric
	ViaEIB        uint64 // packets that used the EIB data lines at least once
	RemoteLookups uint64 // packets whose lookup was served by a peer LFE
	ReleasesSeen  uint64

	CoverageRequests    uint64
	CoverageEstablished uint64
	CoverageFailed      uint64

	// LatencySum accumulates modelled delivery latencies; divide by
	// Delivered for the mean.
	LatencySum float64

	DropReasons map[string]uint64
}

func (m *Metrics) drop(reason string) {
	m.Dropped++
	if m.DropReasons == nil {
		m.DropReasons = make(map[string]uint64)
	}
	m.DropReasons[reason]++
}
