package router

import (
	"testing"
	"testing/quick"

	"repro/internal/linecard"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestDeliverNeverPanicsProperty throws random fault states and packets
// at the delivery engine and checks the invariants that must hold in any
// state:
//
//   - Deliver never panics;
//   - a delivered packet has positive latency and a resolved egress;
//   - a dropped packet carries a reason;
//   - delivered + dropped equals packets injected;
//   - a packet delivered from an LC implies CanDeliver of that LC... for
//     its own-fault dimensions (the ingress predicate), once handshakes
//     settled.
func TestDeliverNeverPanicsProperty(t *testing.T) {
	f := func(seed uint64, faultMask uint16, busDown bool) bool {
		const n = 6
		cfg := UniformConfig(linecard.DRA, n, 3)
		cfg.Seed = seed%1000 + 1
		r, err := New(cfg)
		if err != nil {
			return false
		}
		r.InstallUniformRoutes()

		// Apply a random fault state: 2 bits per LC choose one component
		// (or none); an extra bit kills the bus.
		comps := []linecard.Component{linecard.PDLU, linecard.SRU, linecard.LFE, linecard.PIU, linecard.BusController}
		rng := xrand.New(seed)
		faults := int(faultMask % 8)
		for i := 0; i < faults; i++ {
			lc := rng.Intn(n)
			r.FailComponent(lc, comps[rng.Intn(len(comps))])
		}
		if busDown {
			r.FailBus()
		}
		r.Kernel().Run(1000000) // settle handshakes

		pool := workload.NewAddrPool(rng, n, -1)
		var ids uint64
		injected := 0
		for i := 0; i < 40; i++ {
			src := rng.Intn(n)
			gen, err := workload.NewPoisson(rng, pool, src, r.LC(src).Protocol(), 1e9, &ids)
			if err != nil {
				return false
			}
			_, p := gen.Next()
			rep := r.Deliver(p)
			injected++
			if rep.Kind == PathDropped {
				if rep.DropReason == "" {
					return false
				}
				continue
			}
			if rep.Latency <= 0 {
				return false
			}
			if p.DstLC < 0 || p.DstLC >= n {
				return false
			}
		}
		m := r.Metrics()
		return m.Delivered+m.Dropped == uint64(injected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliverPredicateConsistencyProperty: after handshakes settle, if
// CanDeliver holds for both endpoints of a flow and the fault state only
// involves coverable components, the packet must NOT be dropped for
// coverage reasons. (Drops via "no route" cannot occur with uniform
// routes.)
func TestDeliverPredicateConsistencyProperty(t *testing.T) {
	f := func(seed uint64, whichComp uint8, faultyLC uint8) bool {
		const n = 6
		cfg := UniformConfig(linecard.DRA, n, n) // all same protocol: full coverage
		cfg.Seed = seed%1000 + 1
		r, err := New(cfg)
		if err != nil {
			return false
		}
		r.InstallUniformRoutes()
		comps := []linecard.Component{linecard.PDLU, linecard.SRU, linecard.LFE}
		lc := int(faultyLC) % n
		r.FailComponent(lc, comps[whichComp%3])
		r.Kernel().Run(1000000)

		if !r.CanDeliver(lc) {
			return false // with M=N and one fault, coverage must exist
		}
		rng := xrand.New(seed)
		pool := workload.NewAddrPool(rng, n, lc)
		var ids uint64
		gen, err := workload.NewPoisson(rng, pool, lc, r.LC(lc).Protocol(), 1e9, &ids)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			_, p := gen.Next()
			if rep := r.Deliver(p); rep.Kind == PathDropped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
