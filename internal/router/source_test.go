package router

import (
	"math"
	"testing"

	"repro/internal/linecard"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func newSourceFor(t *testing.T, r *Router, src int, bitsPerUnit float64, seed uint64) *Source {
	t.Helper()
	rng := xrand.New(seed)
	pool := workload.NewAddrPool(rng, r.NumLCs(), src)
	ids := new(uint64)
	gen, err := workload.NewPoisson(rng, pool, src, r.LC(src).Protocol(), bitsPerUnit, ids)
	if err != nil {
		t.Fatal(err)
	}
	return r.NewSource(gen)
}

func TestSourceGoodputMatchesOfferedLoad(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	target := 1.5e9
	s := newSourceFor(t, r, 0, target, 4)
	s.Start()
	r.Kernel().RunUntil(sim.Time(0.02)) // ~7000 packets at 1.5 Gbps
	if s.Injected < 1000 {
		t.Fatalf("injected only %d packets", s.Injected)
	}
	if s.DeliveredFraction() != 1 {
		t.Fatalf("healthy router delivered fraction %g", s.DeliveredFraction())
	}
	if g := s.Goodput(); math.Abs(g-target)/target > 0.1 {
		t.Fatalf("goodput %g, want ~%g", g, target)
	}
}

func TestSourceSeesFaultWindow(t *testing.T) {
	// A PIU failure mid-run cuts goodput; repair restores it. The source
	// must observe a delivered fraction strictly between 0 and 1.
	r := newDRARouter(t, 6, 3)
	s := newSourceFor(t, r, 0, 1.5e9, 5)
	s.Start()
	k := r.Kernel()
	k.Schedule(0.01, func() { r.FailComponent(0, linecard.PIU) })
	k.Schedule(0.02, func() { r.RepairLC(0) })
	k.RunUntil(0.03)
	f := s.DeliveredFraction()
	if f <= 0.5 || f >= 1 {
		t.Fatalf("delivered fraction %g, want in (0.5, 1) for a 1/3 outage window", f)
	}
	// Roughly one third of the window was dark.
	if math.Abs(f-2.0/3) > 0.05 {
		t.Fatalf("delivered fraction %g, want ~0.667", f)
	}
	if r.LC(0).Dropped == 0 {
		t.Fatal("ingress drops not charged to LC0")
	}
}

func TestSourceStop(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	s := newSourceFor(t, r, 1, 1e9, 6)
	s.Start()
	r.Kernel().RunUntil(0.005)
	s.Stop()
	at := s.Injected
	r.Kernel().RunUntil(0.01)
	if s.Injected > at+1 {
		t.Fatalf("source kept injecting after Stop: %d -> %d", at, s.Injected)
	}
}

func TestSourceCoveredLCStillCarriesTraffic(t *testing.T) {
	// With an SRU fault covered over the EIB, the source keeps its full
	// goodput (load is far below ψ of the coverer).
	r := newDRARouter(t, 6, 3)
	r.FailComponent(0, linecard.SRU)
	settle(r)
	s := newSourceFor(t, r, 0, 1.5e9, 7)
	s.Start()
	r.Kernel().RunUntil(r.Kernel().Now() + 0.02)
	if s.DeliveredFraction() != 1 {
		t.Fatalf("covered LC dropped traffic: fraction %g", s.DeliveredFraction())
	}
	if r.Metrics().ViaEIB == 0 {
		t.Fatal("coverage path not used")
	}
}
