package router

import (
	"fmt"
	"math"

	"repro/internal/linecard"
	"repro/internal/sim"
)

// FaultRates carries the exponential failure rates of the paper's Section
// 5 (per hour of simulation time) plus the repair rate.
type FaultRates struct {
	PDLU float64 // λ_LPD: protocol-dependent logic unit
	SRU  float64 // part of λ_LPI
	LFE  float64 // part of λ_LPI
	PIU  float64 // assumed 0 in the paper's analysis; modellable here
	BC   float64 // λ_BC: per-LC bus controller (DRA only)
	Bus  float64 // λ_BUS: the EIB passive lines (DRA only)
	// Repair is μ; a repair event restores every failed unit in the
	// router at once, returning the system to state (0, 0). Zero disables
	// repair (reliability runs).
	Repair float64
}

// PaperRates returns the rates of Section 5: λ_LC = 2e-5 split as
// λ_LPD = 6e-6 and λ_LPI = 1.4e-5 (apportioned 8e-6 SRU / 6e-6 LFE),
// λ_BC = λ_BUS = 1e-6.
func PaperRates(repair float64) FaultRates {
	return FaultRates{
		PDLU:   6e-6,
		SRU:    8e-6,
		LFE:    6e-6,
		BC:     1e-6,
		Bus:    1e-6,
		Repair: repair,
	}
}

// LambdaLPI returns the combined PI-unit rate λ_LPI = λ_SRU + λ_LFE.
func (f FaultRates) LambdaLPI() float64 { return f.SRU + f.LFE }

// LambdaLC returns the whole-LC rate λ_LC = λ_LPD + λ_LPI.
func (f FaultRates) LambdaLC() float64 { return f.PDLU + f.SRU + f.LFE }

// Validate rejects negative rates.
func (f FaultRates) Validate() error {
	for _, v := range []float64{f.PDLU, f.SRU, f.LFE, f.PIU, f.BC, f.Bus, f.Repair} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("router: invalid fault rate %g", v)
		}
	}
	return nil
}

// DefaultBiasDelta is the balanced-failure-biasing δ used when Biasing
// leaves Delta zero: the probability that the next busy-period event is a
// further component failure rather than the repair completion. It stays
// below 0.5 so the inflated total rate Λ' = μ·δ/(1−δ) stays below μ,
// which keeps the exposure weight e^{Λ'·B} of a busy period square-
// integrable (at δ = 0.5 the estimator is still unbiased but its variance
// is infinite).
const DefaultBiasDelta = 0.3

// Biasing configures balanced failure biasing, the standard rare-event
// importance-sampling scheme for dependability models: while a repair is
// pending (the "busy period" that starts at the first component failure),
// component lifetimes are drawn from inflated exponential rates so that
// the multi-failure paths leading to service loss stop being rare, and the
// injector accumulates the log likelihood ratio that de-biases any
// estimate computed from the trajectory.
//
// The biased dynamics are balanced: the total biased failure rate Λ' is
// split equally over the components still alive, so low-rate components
// (the EIB lines, the bus controllers) are sampled as often as high-rate
// ones — exactly the components the DRA failure paths need. Λ' is chosen
// from Delta as the rate that makes the next busy-period event a failure
// with probability Delta when racing the repair (Λ' = μ·Delta/(1−Delta));
// without repair the same odds are applied to the surviving components'
// aggregate true rate.
type Biasing struct {
	// Enabled turns the scheme on. The zero value (off) leaves the
	// injector's sampling byte-for-byte identical to the unbiased one.
	Enabled bool
	// Delta is the target probability that the next busy-period event is
	// a failure; it must lie in (0, 1). Zero selects DefaultBiasDelta.
	// Values below 0.5 keep Λ' < μ and the weight variance finite.
	Delta float64
	// StopWhen, when non-nil, is consulted after every injected failure:
	// once it reports true, the remaining lifetimes of the current busy
	// period return to their true rates. This is the standard "switch off
	// the importance sampling after hitting the rare set" refinement —
	// without it, the exposure term e^{Λ'·t} keeps growing precisely on
	// the down cycles that carry all of the estimate's mass, giving W·D a
	// heavy tail that dominates the estimator variance. The predicate
	// must depend only on the current trajectory (e.g. "the target LC is
	// down"), which keeps the measure change adapted and the estimate
	// unbiased.
	StopWhen func() bool
}

// Validate rejects out-of-range parameters.
func (b Biasing) Validate() error {
	if !b.Enabled {
		return nil
	}
	if b.Delta < 0 || b.Delta >= 1 || math.IsNaN(b.Delta) {
		return fmt.Errorf("router: biasing delta %g outside [0, 1)", b.Delta)
	}
	return nil
}

// delta returns the effective δ.
func (b Biasing) delta() float64 {
	if b.Delta == 0 {
		return DefaultBiasDelta
	}
	return b.Delta
}

// Injector drives component lifetimes and the repair process on a router.
// Each component of each LC (plus the EIB lines) gets an exponential
// time-to-failure; a failed component stays failed until a repair event
// restores the whole router.
//
// With biasing enabled the injector additionally maintains the path's log
// likelihood ratio log(dP/dQ): for every lifetime segment simulated at
// rate λ' while the true rate is λ, an exposure term (λ'−λ)·Δt accrues,
// plus log(λ/λ') when the lifetime actually fires. Segments simulated at
// the true rate contribute exactly zero, so the unbiased phases cost
// nothing and CheckpointLR can be called at any boundary.
type Injector struct {
	r     *Router
	rates FaultRates
	// Faults counts injected component failures; Repairs counts repair
	// completions.
	Faults  uint64
	Repairs uint64

	repairPending bool

	bias   Biasing
	busy   bool // in a busy period (≥1 failure since last repair)
	damped bool // StopWhen fired: biasing off for the rest of the period
	logLR  float64
	// pending is the insertion-ordered registry of armed lifetimes. The
	// order is fixed by Start and preserved across retargets so that the
	// RNG draw sequence — and therefore every estimate — is reproducible.
	pending []*lifetime
	// freeLts recycles fired lifetime records (and their fire closures) so
	// the steady-state fail/repair cycle allocates nothing.
	freeLts []*lifetime
	// repairFn is the repair-completion handler, built once.
	repairFn func()
	// compBuf is the scratch failed-component list reused by repairs.
	compBuf []linecard.Component
	// unitBuf is the scratch failed-topology-unit list reused by repairs.
	unitBuf []int
}

// lifetime is one armed component, EIB-lines, or topology-unit
// time-to-failure.
type lifetime struct {
	lc       int                // -1 for the EIB passive lines and topology units
	comp     linecard.Component // valid when lc >= 0
	unit     int                // topology unit index, or -1
	trueRate float64
	simRate  float64
	armedAt  sim.Time
	ev       sim.Timer
	// fireFn calls inj.fire(this); cached for the record's whole life so
	// each (re)schedule reuses one closure instead of minting one.
	fireFn func()
}

// NewInjector validates the rates and attaches an injector to the router.
func NewInjector(r *Router, rates FaultRates) (*Injector, error) {
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	return &Injector{r: r, rates: rates}, nil
}

// SetBiasing configures balanced failure biasing. Call before Start.
func (inj *Injector) SetBiasing(b Biasing) error {
	if err := b.Validate(); err != nil {
		return err
	}
	inj.bias = b
	return nil
}

// LogLR returns the accumulated log likelihood ratio of the trajectory so
// far, excluding the still-open exposure segments (see CheckpointLR). It
// is exactly 0 when biasing is off.
func (inj *Injector) LogLR() float64 { return inj.logLR }

// CheckpointLR closes every open lifetime segment at the current kernel
// time and returns the accumulated log likelihood ratio. It is safe to
// call at any observation boundary (a cycle end, the horizon); accounting
// continues correctly afterwards because each segment restarts at the
// checkpoint time.
func (inj *Injector) CheckpointLR() float64 {
	for _, lt := range inj.pending {
		inj.closeSegment(lt, false)
	}
	return inj.logLR
}

// Start schedules the initial lifetime of every component. Call once,
// before running the kernel.
func (inj *Injector) Start() {
	r := inj.r
	for i := range r.lcs {
		if r.cfg.Arch == linecard.DRA {
			inj.arm(i, linecard.PDLU, inj.rates.PDLU)
			inj.arm(i, linecard.SRU, inj.rates.SRU)
			inj.arm(i, linecard.BusController, inj.rates.BC)
		} else {
			// A BDR LC has no separate PDLU: its protocol-dependent
			// logic lives inside the PI units, so the PD rate folds into
			// the SRU and λ_LC is preserved.
			inj.arm(i, linecard.SRU, inj.rates.SRU+inj.rates.PDLU)
		}
		inj.arm(i, linecard.LFE, inj.rates.LFE)
		inj.arm(i, linecard.PIU, inj.rates.PIU)
	}
	if r.cfg.Arch == linecard.DRA {
		inj.armBus()
	}
	// Topology interconnect units (mesh routers, crossbar crosspoints,
	// fat-tree switches and their links) fail at the passive-interconnect
	// rate. The bus topology has no units, so this loop is empty there
	// and the RNG draw sequence stays byte-identical to the pre-topology
	// injector.
	for u := 0; u < r.topo.Units(); u++ {
		inj.armUnit(u)
	}
}

// newLifetime takes a lifetime record from the free list or allocates one,
// wiring its cached fire closure on first use.
func (inj *Injector) newLifetime() *lifetime {
	if n := len(inj.freeLts); n > 0 {
		lt := inj.freeLts[n-1]
		inj.freeLts[n-1] = nil
		inj.freeLts = inj.freeLts[:n-1]
		return lt
	}
	lt := &lifetime{}
	lt.fireFn = func() { inj.fire(lt) }
	return lt
}

// release returns a fired lifetime record to the free list. Callers must
// be done with its fields; the fire closure stays attached and follows the
// record into its next incarnation.
func (inj *Injector) release(lt *lifetime) {
	lt.ev = sim.Timer{}
	inj.freeLts = append(inj.freeLts, lt)
}

// arm registers and schedules the next failure of one component. Rearming
// happens after each repair, so a component has exactly one pending
// lifetime at a time.
func (inj *Injector) arm(lc int, c linecard.Component, rate float64) {
	if rate <= 0 {
		return
	}
	lt := inj.newLifetime()
	lt.lc, lt.comp, lt.unit = lc, c, -1
	lt.trueRate, lt.simRate = rate, rate
	lt.armedAt = inj.r.k.Now()
	inj.pending = append(inj.pending, lt)
	inj.schedule(lt)
}

// armBus registers and schedules the next EIB-lines failure.
func (inj *Injector) armBus() {
	if inj.rates.Bus <= 0 {
		return
	}
	lt := inj.newLifetime()
	lt.lc, lt.comp, lt.unit = -1, 0, -1
	lt.trueRate, lt.simRate = inj.rates.Bus, inj.rates.Bus
	lt.armedAt = inj.r.k.Now()
	inj.pending = append(inj.pending, lt)
	inj.schedule(lt)
}

// armUnit registers and schedules the next failure of topology unit u.
// Interconnect elements share the EIB passive-lines rate λ_BUS — they
// are the same class of hardware (backplane traces, switch silicon).
func (inj *Injector) armUnit(u int) {
	if inj.rates.Bus <= 0 {
		return
	}
	lt := inj.newLifetime()
	lt.lc, lt.comp, lt.unit = -1, 0, u
	lt.trueRate, lt.simRate = inj.rates.Bus, inj.rates.Bus
	lt.armedAt = inj.r.k.Now()
	inj.pending = append(inj.pending, lt)
	inj.schedule(lt)
}

// schedule draws the lifetime's delay at its current simulated rate.
func (inj *Injector) schedule(lt *lifetime) {
	r := inj.r
	lt.ev = r.k.After(sim.Time(r.rng.Exp(lt.simRate)), lt.fireFn)
}

// fire handles a lifetime expiring: likelihood accounting, the component
// (or bus) failure, the repair countdown, and the busy-period rebias.
func (inj *Injector) fire(lt *lifetime) {
	r := inj.r
	inj.closeSegment(lt, true)
	inj.remove(lt)
	lc, comp, unit := lt.lc, lt.comp, lt.unit
	inj.release(lt)
	if unit >= 0 {
		if r.topo.UnitFailed(unit) {
			// Already failed through an external injection; the repair
			// path rearms it.
			return
		}
		r.FailTopoUnit(unit)
	} else if lc < 0 {
		if r.bus.Failed() {
			// Already failed through an external injection; the repair
			// path rearms it.
			return
		}
		r.FailBus()
	} else {
		if r.lcs[lc].Failed(comp) {
			// Already failed (raced with an external fault injection);
			// the repair path rearms it.
			return
		}
		r.FailComponent(lc, comp)
	}
	inj.Faults++
	inj.scheduleRepair()
	if inj.bias.Enabled && !inj.damped {
		// Every failure opens or reshapes the busy period: the alive set
		// shrank, so the balanced per-component rate changes — unless the
		// rare set has been reached, in which case biasing switches off
		// for the rest of the period.
		inj.busy = true
		if inj.bias.StopWhen != nil && inj.bias.StopWhen() {
			inj.damped = true
			inj.retarget(0)
		} else {
			inj.rebias()
		}
	}
}

// closeSegment folds the likelihood contribution of the segment since the
// lifetime was last (re)armed and restarts the segment at now. A lifetime
// simulated at its true rate contributes exactly zero.
func (inj *Injector) closeSegment(lt *lifetime, fired bool) {
	now := inj.r.k.Now()
	if lt.simRate != lt.trueRate {
		if dt := float64(now - lt.armedAt); dt > 0 {
			inj.logLR += (lt.simRate - lt.trueRate) * dt
		}
		if fired {
			inj.logLR += math.Log(lt.trueRate) - math.Log(lt.simRate)
		}
	}
	lt.armedAt = now
}

// remove deletes a lifetime from the registry, preserving order.
func (inj *Injector) remove(lt *lifetime) {
	for i, p := range inj.pending {
		if p == lt {
			inj.pending = append(inj.pending[:i], inj.pending[i+1:]...)
			return
		}
	}
}

// rebias retargets every pending lifetime to the balanced busy-period
// rate: the total biased failure rate Λ' = odds(δ)·μ (or odds(δ)·Λ_alive
// without repair) split equally over the alive components.
func (inj *Injector) rebias() {
	n := len(inj.pending)
	if n == 0 {
		return
	}
	odds := inj.bias.delta() / (1 - inj.bias.delta())
	var total float64
	if inj.rates.Repair > 0 {
		total = odds * inj.rates.Repair
	} else {
		alive := 0.0
		for _, lt := range inj.pending {
			alive += lt.trueRate
		}
		total = odds * alive
	}
	inj.retarget(total / float64(n))
}

// retarget closes every open segment and redraws each pending lifetime at
// the given simulated rate (0 restores each lifetime's true rate). The
// memorylessness of the exponential makes the redraw statistically
// transparent; the segment accounting makes it measure-theoretically so.
func (inj *Injector) retarget(per float64) {
	r := inj.r
	now := r.k.Now()
	for _, lt := range inj.pending {
		inj.closeSegment(lt, false)
		if per > 0 {
			lt.simRate = per
		} else {
			lt.simRate = lt.trueRate
		}
		// Lazy reschedule, not Cancel+After: same pending event record,
		// same closure, and one queue rebuild at Commit for the whole
		// batch. The Exp draws happen at the same points in the RNG stream
		// as before, so trajectories are unchanged.
		lt.ev = r.k.RescheduleLazy(lt.ev, now+sim.Time(r.rng.Exp(lt.simRate)))
	}
	r.k.Commit()
}

// scheduleRepair starts one repair countdown if none is pending and repair
// is enabled. The repair restores every failed unit (the paper's repair
// process is one action "irrespective of the type and the number" of
// failed units) and rearms their lifetimes.
func (inj *Injector) scheduleRepair() {
	if inj.rates.Repair <= 0 || inj.repairPending {
		return
	}
	inj.repairPending = true
	r := inj.r
	if inj.repairFn == nil {
		inj.repairFn = func() {
			inj.repairPending = false
			inj.Repairs++
			if inj.bias.Enabled && inj.busy {
				// The busy period ends here: close the biased segments of the
				// surviving components and return them to their true rates
				// (already true if StopWhen damped the period).
				inj.busy = false
				if !inj.damped {
					inj.retarget(0)
				}
				inj.damped = false
			}
			// Restore the EIB first so coverage re-forms for LC repairs.
			if r.bus != nil && r.bus.Failed() {
				r.RepairBus()
				inj.armBus()
			}
			// Then the interconnect units, so data/spare reachability is
			// back before component coverage reconciles.
			inj.unitBuf = r.topo.FailedUnitsAppend(inj.unitBuf[:0])
			for _, u := range inj.unitBuf {
				r.RepairTopoUnit(u)
				inj.armUnit(u)
			}
			for i, lc := range r.lcs {
				inj.compBuf = lc.FailedComponentsAppend(inj.compBuf[:0])
				for _, c := range inj.compBuf {
					rate := inj.rateOf(c)
					r.RepairComponent(i, c)
					inj.arm(i, c, rate)
				}
			}
		}
	}
	r.k.After(simTime(r, inj.rates.Repair), inj.repairFn)
}

func (inj *Injector) rateOf(c linecard.Component) float64 {
	switch c {
	case linecard.PDLU:
		return inj.rates.PDLU
	case linecard.SRU:
		if inj.r.cfg.Arch == linecard.BDR {
			return inj.rates.SRU + inj.rates.PDLU // see Start
		}
		return inj.rates.SRU
	case linecard.LFE:
		return inj.rates.LFE
	case linecard.PIU:
		return inj.rates.PIU
	case linecard.BusController:
		return inj.rates.BC
	default:
		return 0
	}
}

// simTime draws an exponential delay from the router's RNG.
func simTime(r *Router, rate float64) sim.Time {
	return sim.Time(r.rng.Exp(rate))
}
