package router

import (
	"fmt"
	"math"

	"repro/internal/linecard"
	"repro/internal/sim"
)

// FaultRates carries the exponential failure rates of the paper's Section
// 5 (per hour of simulation time) plus the repair rate.
type FaultRates struct {
	PDLU float64 // λ_LPD: protocol-dependent logic unit
	SRU  float64 // part of λ_LPI
	LFE  float64 // part of λ_LPI
	PIU  float64 // assumed 0 in the paper's analysis; modellable here
	BC   float64 // λ_BC: per-LC bus controller (DRA only)
	Bus  float64 // λ_BUS: the EIB passive lines (DRA only)
	// Repair is μ; a repair event restores every failed unit in the
	// router at once, returning the system to state (0, 0). Zero disables
	// repair (reliability runs).
	Repair float64
}

// PaperRates returns the rates of Section 5: λ_LC = 2e-5 split as
// λ_LPD = 6e-6 and λ_LPI = 1.4e-5 (apportioned 8e-6 SRU / 6e-6 LFE),
// λ_BC = λ_BUS = 1e-6.
func PaperRates(repair float64) FaultRates {
	return FaultRates{
		PDLU:   6e-6,
		SRU:    8e-6,
		LFE:    6e-6,
		BC:     1e-6,
		Bus:    1e-6,
		Repair: repair,
	}
}

// LambdaLPI returns the combined PI-unit rate λ_LPI = λ_SRU + λ_LFE.
func (f FaultRates) LambdaLPI() float64 { return f.SRU + f.LFE }

// LambdaLC returns the whole-LC rate λ_LC = λ_LPD + λ_LPI.
func (f FaultRates) LambdaLC() float64 { return f.PDLU + f.SRU + f.LFE }

// Validate rejects negative rates.
func (f FaultRates) Validate() error {
	for _, v := range []float64{f.PDLU, f.SRU, f.LFE, f.PIU, f.BC, f.Bus, f.Repair} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("router: invalid fault rate %g", v)
		}
	}
	return nil
}

// Injector drives component lifetimes and the repair process on a router.
// Each component of each LC (plus the EIB lines) gets an exponential
// time-to-failure; a failed component stays failed until a repair event
// restores the whole router.
type Injector struct {
	r     *Router
	rates FaultRates
	// Faults counts injected component failures; Repairs counts repair
	// completions.
	Faults  uint64
	Repairs uint64

	repairPending bool
}

// NewInjector validates the rates and attaches an injector to the router.
func NewInjector(r *Router, rates FaultRates) (*Injector, error) {
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	return &Injector{r: r, rates: rates}, nil
}

// Start schedules the initial lifetime of every component. Call once,
// before running the kernel.
func (inj *Injector) Start() {
	r := inj.r
	for i := range r.lcs {
		if r.cfg.Arch == linecard.DRA {
			inj.arm(i, linecard.PDLU, inj.rates.PDLU)
			inj.arm(i, linecard.SRU, inj.rates.SRU)
			inj.arm(i, linecard.BusController, inj.rates.BC)
		} else {
			// A BDR LC has no separate PDLU: its protocol-dependent
			// logic lives inside the PI units, so the PD rate folds into
			// the SRU and λ_LC is preserved.
			inj.arm(i, linecard.SRU, inj.rates.SRU+inj.rates.PDLU)
		}
		inj.arm(i, linecard.LFE, inj.rates.LFE)
		inj.arm(i, linecard.PIU, inj.rates.PIU)
	}
	if r.cfg.Arch == linecard.DRA {
		inj.armBus()
	}
}

// arm schedules the next failure of one component. Rearming happens after
// each repair, so a component has exactly one pending lifetime at a time.
func (inj *Injector) arm(lc int, c linecard.Component, rate float64) {
	if rate <= 0 {
		return
	}
	r := inj.r
	r.k.After(simTime(r, rate), func() {
		if r.lcs[lc].Failed(c) {
			// Already failed (lifetime raced with an earlier failure);
			// the repair path rearms it.
			return
		}
		r.FailComponent(lc, c)
		inj.Faults++
		inj.scheduleRepair()
		// The component stays failed until repair; its next lifetime is
		// armed by the repair handler.
	})
}

// armBus schedules the next EIB-lines failure.
func (inj *Injector) armBus() {
	if inj.rates.Bus <= 0 {
		return
	}
	r := inj.r
	r.k.After(simTime(r, inj.rates.Bus), func() {
		if r.bus.Failed() {
			return
		}
		r.FailBus()
		inj.Faults++
		inj.scheduleRepair()
	})
}

// scheduleRepair starts one repair countdown if none is pending and repair
// is enabled. The repair restores every failed unit (the paper's repair
// process is one action "irrespective of the type and the number" of
// failed units) and rearms their lifetimes.
func (inj *Injector) scheduleRepair() {
	if inj.rates.Repair <= 0 || inj.repairPending {
		return
	}
	inj.repairPending = true
	r := inj.r
	r.k.After(simTime(r, inj.rates.Repair), func() {
		inj.repairPending = false
		inj.Repairs++
		// Restore the EIB first so coverage re-forms for LC repairs.
		if r.bus != nil && r.bus.Failed() {
			r.RepairBus()
			inj.armBus()
		}
		for i, lc := range r.lcs {
			for _, c := range lc.FailedComponents() {
				rate := inj.rateOf(c)
				r.RepairComponent(i, c)
				inj.arm(i, c, rate)
			}
		}
	})
}

func (inj *Injector) rateOf(c linecard.Component) float64 {
	switch c {
	case linecard.PDLU:
		return inj.rates.PDLU
	case linecard.SRU:
		if inj.r.cfg.Arch == linecard.BDR {
			return inj.rates.SRU + inj.rates.PDLU // see Start
		}
		return inj.rates.SRU
	case linecard.LFE:
		return inj.rates.LFE
	case linecard.PIU:
		return inj.rates.PIU
	case linecard.BusController:
		return inj.rates.BC
	default:
		return 0
	}
}

// simTime draws an exponential delay from the router's RNG.
func simTime(r *Router, rate float64) sim.Time {
	return sim.Time(r.rng.Exp(rate))
}
