package router

import (
	"strings"
	"testing"

	"repro/internal/linecard"
	"repro/internal/trace"
)

func TestRouterTraceRecordsLifecycle(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	rec := trace.New(64)
	r.SetTracer(rec)
	if r.Tracer() != rec {
		t.Fatal("tracer not attached")
	}

	r.FailComponent(0, linecard.SRU)
	settle(r)
	r.FailBus()
	r.RepairBus()
	settle(r)
	r.RepairLC(0)
	settle(r)
	r.FailComponent(4, linecard.PIU)
	settle(r)
	r.Deliver(pkt(1, 4, 2)) // drop: ingress PIU failed

	if rec.Count(trace.Fault) != 2 {
		t.Fatalf("faults = %d", rec.Count(trace.Fault))
	}
	if rec.Count(trace.CoverageUp) < 2 { // initial + re-established after bus repair
		t.Fatalf("coverage-up = %d", rec.Count(trace.CoverageUp))
	}
	if rec.Count(trace.BusDown) != 1 || rec.Count(trace.BusUp) != 1 {
		t.Fatal("bus events missing")
	}
	if rec.Count(trace.Drop) != 1 {
		t.Fatalf("drops = %d", rec.Count(trace.Drop))
	}
	dump := rec.Dump()
	for _, want := range []string{"fault", "SRU", "coverage-up", "bus-down", "drop", "ingress PIU failed"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRouterWithoutTracerStillWorks(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	r.FailComponent(0, linecard.SRU)
	settle(r)
	if !r.CanDeliver(0) {
		t.Fatal("behaviour changed without tracer")
	}
}

func TestMetricsJSON(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	r.Deliver(pkt(1, 0, 2))
	data, err := r.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"Delivered": 1`, `"ViaFabric": 1`, `"Dropped": 0`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestDeliverFromChargesIngress(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(2, linecard.PIU)
	settle(r)
	r.DeliverFrom(pkt(1, 2, 4))
	if r.LC(2).Dropped != 1 {
		t.Fatalf("LC2 Dropped = %d", r.LC(2).Dropped)
	}
	r.DeliverFrom(pkt(2, 0, 4))
	if r.LC(0).Dropped != 0 {
		t.Fatal("successful delivery charged a drop")
	}
}
