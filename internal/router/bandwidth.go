package router

import (
	"fmt"

	"repro/internal/linecard"
)

// BandwidthReport is the outcome of the fluid coverage-bandwidth
// computation for one configuration of failures and loads — the simulated
// counterpart of the paper's Section 5.3 analysis.
type BandwidthReport struct {
	// PerFaulty maps each faulty LC to the bandwidth it receives over the
	// EIB (bits per time unit).
	PerFaulty map[int]float64
	// Demand is the per-LC demand L·c_LC.
	Demand float64
	// SpareTotal is Σψ over healthy covering LCs.
	SpareTotal float64
	// BusCap is B_BUS.
	BusCap float64
}

// FractionOfDemand returns B_faulty normalized to the demand for LC i, the
// y-axis of Figure 8.
func (b BandwidthReport) FractionOfDemand(i int) float64 {
	if b.Demand == 0 {
		return 1
	}
	return b.PerFaulty[i] / b.Demand
}

// CoverageBandwidth computes, under the current fault state, the bandwidth
// each faulty-but-covered LC receives, mirroring the EIB mechanism:
//
//  1. every faulty LC asks for its offered load (L·c_LC);
//  2. healthy LCs offer ψ = c_LC − L·c_LC each, pooled;
//  3. the EIB promise formula scales everyone back proportionally when
//     the total ask exceeds B_BUS;
//  4. the spare-capacity pool caps the total coverage similarly.
//
// The LC with index len-1 plays LC_out and is excluded from covering, per
// the paper's assumption that LC_out is fault-free and not part of the
// covering pool accounting (X_nonfaulty + X_faulty = N with LC_out
// excluded from failures).
func (r *Router) CoverageBandwidth() BandwidthReport {
	rep := BandwidthReport{PerFaulty: make(map[int]float64)}
	if r.bus != nil {
		rep.BusCap = r.bus.Config().DataCapacity
	}
	var faulty []int
	for i, lc := range r.lcs {
		if !lc.FullyHealthy() {
			faulty = append(faulty, i)
		} else {
			rep.SpareTotal += lc.Capacity() - r.offered[i]
		}
	}
	if len(faulty) == 0 {
		return rep
	}
	if r.cfg.Arch != linecard.DRA || r.bus == nil || r.bus.Failed() {
		for _, i := range faulty {
			rep.PerFaulty[i] = 0
		}
		return rep
	}
	// Uniform loads in this model: use LC 0's offered load as L·c.
	rep.Demand = r.offered[faulty[0]]
	totalAsk := 0.0
	for _, i := range faulty {
		totalAsk += r.offered[i]
	}
	// EIB promise scale-back.
	scale := 1.0
	if totalAsk > rep.BusCap && totalAsk > 0 {
		scale = rep.BusCap / totalAsk
	}
	// Spare-pool scale-back.
	if totalAsk*scale > rep.SpareTotal && totalAsk > 0 {
		scale = rep.SpareTotal / totalAsk
	}
	for _, i := range faulty {
		got := r.offered[i] * scale
		if got > r.offered[i] {
			got = r.offered[i]
		}
		rep.PerFaulty[i] = got
	}
	return rep
}

// FailWholeLC marks every unit of LC i failed except the PIU (the paper's
// §5.3 treats a faulty LC as a single unit whose traffic the EIB
// carries). The PIU stays up so the external link still terminates.
func (r *Router) FailWholeLC(i int) {
	for _, c := range []linecard.Component{linecard.PDLU, linecard.SRU, linecard.LFE} {
		if r.lcs[i].Arch() == linecard.BDR && c == linecard.PDLU {
			continue
		}
		if !r.lcs[i].Failed(c) {
			r.lcs[i].Fail(c)
		}
	}
	r.reconcileCoverage()
}

// String renders the report compactly for logs.
func (b BandwidthReport) String() string {
	return fmt.Sprintf("demand=%g spare=%g bus=%g per-faulty=%v", b.Demand, b.SpareTotal, b.BusCap, b.PerFaulty)
}
