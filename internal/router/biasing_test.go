package router

import (
	"math"
	"testing"

	"repro/internal/linecard"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestBiasingValidate(t *testing.T) {
	for _, b := range []Biasing{
		{Enabled: true, Delta: 1},
		{Enabled: true, Delta: 1.5},
		{Enabled: true, Delta: -0.1},
		{Enabled: true, Delta: math.NaN()},
	} {
		if b.Validate() == nil {
			t.Fatalf("Biasing %+v accepted", b)
		}
	}
	if (Biasing{Enabled: true, Delta: 0.3}).Validate() != nil {
		t.Fatal("valid delta rejected")
	}
	if (Biasing{Enabled: true}).Validate() != nil {
		t.Fatal("zero delta (→ default) rejected")
	}
	// Disabled biasing never validates its parameters.
	if (Biasing{Delta: 7}).Validate() != nil {
		t.Fatal("disabled biasing must not validate Delta")
	}
}

func TestLogLRZeroWhenBiasingOff(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	inj, err := NewInjector(r, FaultRates{
		PDLU: 0.01, SRU: 0.01, LFE: 0.01, BC: 0.01, Bus: 0.01, Repair: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	r.Kernel().RunUntil(500)
	if inj.Faults == 0 || inj.Repairs == 0 {
		t.Fatalf("faults=%d repairs=%d: run too short to be meaningful", inj.Faults, inj.Repairs)
	}
	if inj.LogLR() != 0 || inj.CheckpointLR() != 0 {
		t.Fatalf("unbiased trajectory must carry log-LR exactly 0, got %g", inj.LogLR())
	}
}

func TestBiasingDeterministicForSeed(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		cfg := UniformConfig(linecard.DRA, 4, 2)
		cfg.Seed = 42
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.InstallUniformRoutes()
		inj, err := NewInjector(r, PaperRates(1.0/3))
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.SetBiasing(Biasing{Enabled: true, Delta: 0.5}); err != nil {
			t.Fatal(err)
		}
		inj.Start()
		r.Kernel().RunUntil(2e5)
		return inj.Faults, inj.Repairs, inj.CheckpointLR()
	}
	f1, r1, l1 := run()
	f2, r2, l2 := run()
	if f1 != f2 || r1 != r2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d,%d,%g) vs (%d,%d,%g)", f1, r1, l1, f2, r2, l2)
	}
	if l1 == 0 {
		t.Fatal("biased busy periods must have produced a nonzero log-LR")
	}
}

// TestBiasingInflatesBusyPeriodFailures: balanced failure biasing exists
// to make the second failure inside a busy period common instead of
// astronomically rare. With the paper's rates and μ = 1/3, δ = 0.5 makes
// every busy-period race a coin flip, so the biased run injects roughly
// twice as many faults per repair cycle as the unbiased one.
func TestBiasingInflatesBusyPeriodFailures(t *testing.T) {
	run := func(bias bool) (faults, repairs uint64) {
		cfg := UniformConfig(linecard.DRA, 9, 4)
		cfg.Seed = 7
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.InstallUniformRoutes()
		inj, err := NewInjector(r, PaperRates(1.0/3))
		if err != nil {
			t.Fatal(err)
		}
		if bias {
			if err := inj.SetBiasing(Biasing{Enabled: true}); err != nil {
				t.Fatal(err)
			}
		}
		inj.Start()
		r.Kernel().RunUntil(5e5)
		return inj.Faults, inj.Repairs
	}
	bf, br := run(true)
	uf, ur := run(false)
	if br == 0 || ur == 0 {
		t.Fatalf("no repair cycles: biased %d/%d, unbiased %d/%d", bf, br, uf, ur)
	}
	biasedPerCycle := float64(bf) / float64(br)
	unbiasedPerCycle := float64(uf) / float64(ur)
	// δ = 0.5 → geometric mean 2 failures per cycle; unbiased ≈ 1.
	if biasedPerCycle < 1.5 {
		t.Fatalf("biased faults per cycle = %g, want ≈ 2", biasedPerCycle)
	}
	if unbiasedPerCycle > 1.1 {
		t.Fatalf("unbiased faults per cycle = %g, want ≈ 1", unbiasedPerCycle)
	}
}

// TestBiasedCycleWeightMeanOne checks the likelihood-ratio accounting's
// unbiasedness on its natural unit, the regenerative cycle: for any
// trajectory functional, E_Q[W·f] = E_P[f], so with f ≡ 1 the mean cycle
// weight must be exactly 1. Rates are chosen so the biased and true
// dynamics are close (the weights stay near 1) and the sample mean test
// has power.
func TestBiasedCycleWeightMeanOne(t *testing.T) {
	const reps = 2000
	var w stats.Welford
	for rep := 0; rep < reps; rep++ {
		cfg := UniformConfig(linecard.DRA, 4, 2)
		cfg.Seed = uint64(1000 + rep)
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.InstallUniformRoutes()
		inj, err := NewInjector(r, FaultRates{
			PDLU: 0.01, SRU: 0.01, LFE: 0.01, BC: 0.01, Bus: 0.01, Repair: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.SetBiasing(Biasing{Enabled: true, Delta: 0.5}); err != nil {
			t.Fatal(err)
		}
		inj.Start()
		// One full regenerative cycle: all-up → first failure → repair.
		k := r.Kernel()
		for inj.Repairs == 0 && k.Step() {
		}
		if inj.Repairs == 0 {
			t.Fatal("cycle did not complete")
		}
		w.Add(math.Exp(inj.CheckpointLR()))
	}
	lo, hi := w.CI(3.29) // 99.9% band: keep the suite quiet
	if lo > 1 || hi < 1 {
		t.Fatalf("E[W] CI [%g, %g] excludes 1 (mean %g)", lo, hi, w.Mean())
	}
	// And the weights must genuinely vary (the accounting is not a no-op).
	if w.Variance() == 0 {
		t.Fatal("cycle weights are degenerate")
	}
}

// TestCheckpointLRIsBoundarySafe: checkpointing mid-trajectory must not
// change the final accumulated log-LR.
func TestCheckpointLRIsBoundarySafe(t *testing.T) {
	run := func(checkpoints int) float64 {
		cfg := UniformConfig(linecard.DRA, 4, 2)
		cfg.Seed = 99
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.InstallUniformRoutes()
		inj, err := NewInjector(r, PaperRates(1.0/3))
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.SetBiasing(Biasing{Enabled: true}); err != nil {
			t.Fatal(err)
		}
		inj.Start()
		const horizon = 2e5
		for i := 1; i <= checkpoints; i++ {
			r.Kernel().RunUntil(sim.Time(horizon * float64(i) / float64(checkpoints)))
			inj.CheckpointLR()
		}
		return inj.CheckpointLR()
	}
	one := run(1)
	many := run(8)
	if math.Abs(one-many) > 1e-9 {
		t.Fatalf("checkpointing changed the log-LR: %g vs %g", one, many)
	}
}
