package router

import (
	"fmt"
	"sort"

	"repro/internal/linecard"
	"repro/internal/sim"
)

// Scenario is a scripted fault/repair timeline — the reproduction's
// answer to "replay this outage": integration tests, examples, and the
// drasim tool use it to drive a router through deterministic multi-phase
// failure stories and observe the service timeline.
type Scenario struct {
	steps []scenarioStep
}

type scenarioStep struct {
	at    sim.Time
	label string
	do    func(*Router)
}

// At schedules an arbitrary action.
func (s *Scenario) At(t float64, label string, do func(*Router)) *Scenario {
	if do == nil {
		panic("router: nil scenario action")
	}
	s.steps = append(s.steps, scenarioStep{at: sim.Time(t), label: label, do: do})
	return s
}

// Fail schedules a component failure.
func (s *Scenario) Fail(t float64, lc int, c linecard.Component) *Scenario {
	return s.At(t, fmt.Sprintf("fail LC%d %v", lc, c), func(r *Router) { r.FailComponent(lc, c) })
}

// Repair schedules a whole-LC repair.
func (s *Scenario) Repair(t float64, lc int) *Scenario {
	return s.At(t, fmt.Sprintf("repair LC%d", lc), func(r *Router) { r.RepairLC(lc) })
}

// FailBus schedules an EIB-lines failure.
func (s *Scenario) FailBus(t float64) *Scenario {
	return s.At(t, "fail EIB", func(r *Router) { r.FailBus() })
}

// RepairBus schedules an EIB-lines repair.
func (s *Scenario) RepairBus(t float64) *Scenario {
	return s.At(t, "repair EIB", func(r *Router) { r.RepairBus() })
}

// FailFabricCard schedules a fabric-card failure.
func (s *Scenario) FailFabricCard(t float64, card int) *Scenario {
	return s.At(t, fmt.Sprintf("fail fabric card %d", card), func(r *Router) { r.Fabric().FailCard(card) })
}

// RepairFabricCard schedules a fabric-card repair.
func (s *Scenario) RepairFabricCard(t float64, card int) *Scenario {
	return s.At(t, fmt.Sprintf("repair fabric card %d", card), func(r *Router) { r.Fabric().RepairCard(card) })
}

// FailFabricPort schedules the loss of an LC's fabric port.
func (s *Scenario) FailFabricPort(t float64, lc int) *Scenario {
	return s.At(t, fmt.Sprintf("fail fabric port %d", lc), func(r *Router) { r.Fabric().FailPort(lc) })
}

// Sample is one observation of the service state after a scenario step.
type Sample struct {
	At    float64
	Label string
	// Up[i] reports CanDeliver(i) after the step settled.
	Up []bool
	// Covers[i] is the covering peer of LC i (-1 if none).
	Covers []int
}

// Play executes the scenario on the router. After each step it drains the
// kernel briefly (settle) so EIB handshakes triggered by the step
// complete, then records a sample. It returns the samples in step order.
func (s *Scenario) Play(r *Router) []Sample {
	steps := make([]scenarioStep, len(s.steps))
	copy(steps, s.steps)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].at < steps[j].at })
	var out []Sample
	for _, st := range steps {
		if st.at < r.k.Now() {
			panic(fmt.Sprintf("router: scenario step %q at %v is in the simulated past (%v)", st.label, st.at, r.k.Now()))
		}
		r.k.RunUntil(st.at)
		st.do(r)
		// Settle handshakes: the control-plane converges in microseconds
		// of simulated time, far below any realistic step spacing.
		r.k.Run(100000)
		smp := Sample{At: float64(r.k.Now()), Label: st.label}
		for i := 0; i < r.NumLCs(); i++ {
			smp.Up = append(smp.Up, r.CanDeliver(i))
			smp.Covers = append(smp.Covers, r.CoverPeer(i))
		}
		out = append(out, smp)
	}
	return out
}

// TimelineString renders samples compactly, one line per step, for logs
// and examples: "t=100 fail LC0 SRU | up: 1 1 1 1 | covers: 1 - - -".
func TimelineString(samples []Sample) string {
	out := ""
	for _, s := range samples {
		ups := ""
		covers := ""
		for i, u := range s.Up {
			if u {
				ups += " 1"
			} else {
				ups += " 0"
			}
			if s.Covers[i] >= 0 {
				covers += fmt.Sprintf(" %d", s.Covers[i])
			} else {
				covers += " -"
			}
		}
		out += fmt.Sprintf("t=%-10.0f %-26s | up:%s | covered-by:%s\n", s.At, s.Label, ups, covers)
	}
	return out
}
