package router

import (
	"testing"

	"repro/internal/linecard"
	"repro/internal/packet"
	"repro/internal/testutil"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Zero-alloc gates for the steady-state packet path through the router:
// fault-free fabric delivery (lookup → segmentation → fabric → reassembly)
// and the source injection loop must not allocate once warm.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	if testutil.PoolcheckEnabled {
		t.Skip("poolcheck released-set bookkeeping allocates by design")
	}
}

func TestDeliverSteadyStateAllocFree(t *testing.T) {
	skipUnderRace(t)
	r := newDRARouter(t, 6, 3)
	settle(r)
	p := packet.Get()
	defer packet.Release(p)
	id := uint64(0)
	deliver := func() {
		for dst := 1; dst < 4; dst++ {
			id++
			*p = packet.Packet{
				ID:    id,
				SrcLC: 0,
				DstIP: workload.PrefixFor(dst) | 0x123,
				DstLC: -1,
				Proto: packet.ProtoEthernet,
				Bytes: 1500,
			}
			if rep := r.Deliver(p); rep.Kind != PathFabric {
				t.Fatalf("fault-free delivery took %v", rep.Kind)
			}
		}
	}
	for i := 0; i < 16; i++ { // warm cell buffer, reassembler free lists
		deliver()
	}
	if n := testing.AllocsPerRun(200, deliver); n != 0 {
		t.Fatalf("steady-state Deliver allocates %v per 3 packets, want 0", n)
	}
}

// TestSourceLoopAllocFree pins the full injection loop — generator draw,
// kernel event, Deliver, pool release — to zero allocations per arrival.
func TestSourceLoopAllocFree(t *testing.T) {
	skipUnderRace(t)
	r := newDRARouter(t, 6, 3)
	settle(r)
	cfg := UniformConfig(linecard.DRA, 6, 3)
	rng := xrand.New(11)
	pool := workload.NewAddrPool(rng, 6, 0)
	var ids uint64
	gen, err := workload.NewPoisson(rng, pool, 0, packet.ProtoEthernet, 0.3*cfg.LCCapacity, &ids)
	if err != nil {
		t.Fatal(err)
	}
	s := r.NewSource(gen)
	s.Start()
	k := r.Kernel()
	for i := 0; i < 200; i++ { // warm pools along the whole path
		k.Step()
	}
	if n := testing.AllocsPerRun(500, func() { k.Step() }); n != 0 {
		t.Fatalf("source injection loop allocates %v per event, want 0", n)
	}
}
