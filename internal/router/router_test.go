package router

import (
	"testing"

	"repro/internal/linecard"
	"repro/internal/packet"
	"repro/internal/workload"
)

// newDRARouter builds a standard N=6, M=3 DRA router with routes
// installed and coverage handshakes drained.
func newDRARouter(t *testing.T, n, m int) *Router {
	t.Helper()
	r, err := New(UniformConfig(linecard.DRA, n, m))
	if err != nil {
		t.Fatal(err)
	}
	r.InstallUniformRoutes()
	return r
}

func newBDRRouter(t *testing.T, n int) *Router {
	t.Helper()
	r, err := New(UniformConfig(linecard.BDR, n, n))
	if err != nil {
		t.Fatal(err)
	}
	r.InstallUniformRoutes()
	return r
}

// settle drains pending EIB handshakes.
func settle(r *Router) { r.Kernel().Run(100000) }

// pkt builds a packet from src to the /8 owned by dst.
func pkt(id uint64, src, dst int) *packet.Packet {
	return &packet.Packet{
		ID:    id,
		SrcLC: src,
		DstIP: workload.PrefixFor(dst) | 0x123,
		DstLC: -1,
		Proto: packet.ProtoEthernet,
		Bytes: 1500,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Protocols: []packet.Protocol{0}}); err == nil {
		t.Fatal("single-LC router accepted")
	}
}

func TestUniformConfigProtocols(t *testing.T) {
	cfg := UniformConfig(linecard.DRA, 6, 3)
	for i := 0; i < 3; i++ {
		if cfg.Protocols[i] != packet.ProtoEthernet {
			t.Fatalf("LC %d proto = %v", i, cfg.Protocols[i])
		}
	}
	for i := 3; i < 6; i++ {
		if cfg.Protocols[i] == packet.ProtoEthernet {
			t.Fatalf("LC %d should not share protocol 0", i)
		}
	}
}

func TestHealthyDeliveryViaFabric(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	rep := r.Deliver(pkt(1, 0, 4))
	if rep.Kind != PathFabric {
		t.Fatalf("path = %v (%s)", rep.Kind, rep.DropReason)
	}
	if rep.Cells != packet.CellsFor(1500) {
		t.Fatalf("cells = %d", rep.Cells)
	}
	m := r.Metrics()
	if m.Delivered != 1 || m.Dropped != 0 || m.ViaFabric != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if r.LC(4).Delivered != 1 {
		t.Fatal("egress LC delivery counter")
	}
}

func TestHairpinDelivery(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	p := &packet.Packet{ID: 1, SrcLC: 2, DstIP: workload.PrefixFor(2) | 9, DstLC: -1, Bytes: 100}
	rep := r.Deliver(p)
	if rep.Kind != PathFabric || rep.Cells != 0 {
		t.Fatalf("hairpin = %+v", rep)
	}
}

func TestBDRAnyFailureKillsLC(t *testing.T) {
	r := newBDRRouter(t, 4)
	if !r.CanDeliver(1) {
		t.Fatal("healthy BDR LC down")
	}
	r.FailComponent(1, linecard.SRU)
	if r.CanDeliver(1) {
		t.Fatal("BDR LC with failed SRU still up")
	}
	rep := r.Deliver(pkt(1, 1, 2))
	if rep.Kind != PathDropped {
		t.Fatalf("BDR packet survived SRU failure: %+v", rep)
	}
	// Repair restores.
	r.RepairLC(1)
	if !r.CanDeliver(1) {
		t.Fatal("repair did not restore")
	}
	if rep := r.Deliver(pkt(2, 1, 2)); rep.Kind != PathFabric {
		t.Fatalf("post-repair path = %v", rep.Kind)
	}
}

func TestDRACase2SRUCoverage(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(0, linecard.SRU)
	settle(r)
	if !r.CanDeliver(0) {
		t.Fatal("SRU failure not coverable")
	}
	peer := r.CoverPeer(0)
	if peer < 0 {
		t.Fatal("no coverage binding established")
	}
	rep := r.Deliver(pkt(1, 0, 4))
	if rep.Kind != PathIngressCover {
		t.Fatalf("path = %v (%s)", rep.Kind, rep.DropReason)
	}
	if rep.IngressVia != peer {
		t.Fatalf("IngressVia = %d, want %d", rep.IngressVia, peer)
	}
	if r.Metrics().ViaEIB == 0 {
		t.Fatal("EIB counter untouched")
	}
	if r.Bus().ActiveLPs() != 1 {
		t.Fatalf("ActiveLPs = %d", r.Bus().ActiveLPs())
	}
}

func TestDRACase2PDLUNeedsSameProtocol(t *testing.T) {
	// M=1: LC 0 is the only Ethernet card; its PDLU failure is not
	// coverable.
	r := newDRARouter(t, 5, 1)
	r.FailComponent(0, linecard.PDLU)
	settle(r)
	if r.CanDeliver(0) {
		t.Fatal("PDLU failure covered without a same-protocol peer")
	}
	rep := r.Deliver(pkt(1, 0, 2))
	if rep.Kind != PathDropped {
		t.Fatalf("packet survived: %+v", rep)
	}

	// With M=3 the same failure is covered by a same-protocol LC.
	r2 := newDRARouter(t, 5, 3)
	r2.FailComponent(0, linecard.PDLU)
	settle(r2)
	if !r2.CanDeliver(0) {
		t.Fatal("PDLU failure not covered despite same-protocol peers")
	}
	peer := r2.CoverPeer(0)
	if peer < 1 || peer > 2 {
		t.Fatalf("cover peer = %d, want a same-protocol LC (1 or 2)", peer)
	}
	rep = r2.Deliver(pkt(1, 0, 4))
	if rep.Kind != PathIngressCover {
		t.Fatalf("path = %v (%s)", rep.Kind, rep.DropReason)
	}
}

func TestDRALFERemoteLookup(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(0, linecard.LFE)
	settle(r)
	if !r.CanDeliver(0) {
		t.Fatal("LFE failure not coverable")
	}
	// No data binding needed for a pure LFE failure.
	if r.CoverPeer(0) != -1 {
		t.Fatal("LFE failure opened a data LP")
	}
	rep := r.Deliver(pkt(1, 0, 4))
	if rep.Kind != PathFabric {
		t.Fatalf("path = %v (%s)", rep.Kind, rep.DropReason)
	}
	if rep.RemoteLookup < 0 {
		t.Fatal("lookup was not remote")
	}
	if r.Metrics().RemoteLookups != 1 {
		t.Fatal("RemoteLookups counter")
	}
	if r.LC(rep.RemoteLookup).LookupsServedForPeers != 1 {
		t.Fatal("peer lookup counter")
	}
}

func TestDRACase3EgressPDLUDirectSameProtocol(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	// Egress LC 1 (Ethernet) loses its PDLU; ingress LC 0 is also
	// Ethernet → EIB-direct.
	r.FailComponent(1, linecard.PDLU)
	settle(r)
	rep := r.Deliver(pkt(1, 0, 1))
	if rep.Kind != PathEgressDirect {
		t.Fatalf("path = %v (%s)", rep.Kind, rep.DropReason)
	}
	if rep.Cells != 0 {
		t.Fatal("EIB-direct path should not segment into fabric cells")
	}
}

func TestDRACase3EgressPDLUViaIntermediate(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	// Egress LC 3 is non-Ethernet; ingress LC 0 is Ethernet. LC 3's
	// protocol twin must relay.
	outProto := r.LC(3).Protocol()
	twin := -1
	for j := 0; j < 6; j++ {
		if j != 3 && r.LC(j).Protocol() == outProto {
			twin = j
		}
	}
	if twin < 0 {
		t.Skip("configuration has no protocol twin for LC 3")
	}
	r.FailComponent(3, linecard.PDLU)
	settle(r)
	rep := r.Deliver(pkt(1, 0, 3))
	if rep.Kind != PathEgressInter {
		t.Fatalf("path = %v (%s)", rep.Kind, rep.DropReason)
	}
	if rep.EgressVia != twin {
		t.Fatalf("EgressVia = %d, want %d", rep.EgressVia, twin)
	}
	if r.LC(3).Delivered != 1 {
		t.Fatal("delivery credited to wrong LC")
	}
}

func TestDRACase3EgressPDLUNoIntermediate(t *testing.T) {
	// N=5, M=1 via a custom protocol layout where LC 4's protocol is
	// unique: ingress Ethernet cannot help, no twin exists → drop.
	cfg := UniformConfig(linecard.DRA, 5, 4)
	cfg.Protocols[4] = packet.ProtoFrameRelay
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.InstallUniformRoutes()
	r.FailComponent(4, linecard.PDLU)
	settle(r)
	rep := r.Deliver(pkt(1, 0, 4))
	if rep.Kind != PathDropped || rep.DropReason != "no intermediate LC for egress PDLU" {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestDRACase3EgressSRUCover(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(4, linecard.SRU)
	settle(r)
	rep := r.Deliver(pkt(1, 0, 4))
	if rep.Kind != PathEgressSRUCover {
		t.Fatalf("path = %v (%s)", rep.Kind, rep.DropReason)
	}
}

func TestPIUFailureUncoverable(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(2, linecard.PIU)
	settle(r)
	if r.CanDeliver(2) {
		t.Fatal("PIU failure covered")
	}
	if rep := r.Deliver(pkt(1, 2, 4)); rep.Kind != PathDropped || rep.DropReason != "ingress PIU failed" {
		t.Fatalf("ingress rep = %+v", rep)
	}
	if rep := r.Deliver(pkt(2, 0, 2)); rep.Kind != PathDropped || rep.DropReason != "egress PIU failed" {
		t.Fatalf("egress rep = %+v", rep)
	}
}

func TestBusFailureRemovesCoverage(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(0, linecard.SRU)
	settle(r)
	if !r.CanDeliver(0) {
		t.Fatal("precondition: covered")
	}
	r.FailBus()
	if r.CanDeliver(0) {
		t.Fatal("coverage survived bus failure")
	}
	if rep := r.Deliver(pkt(1, 0, 4)); rep.Kind != PathDropped {
		t.Fatalf("rep = %+v", rep)
	}
	// Healthy LCs keep routing through the fabric.
	if !r.CanDeliver(1) {
		t.Fatal("healthy LC down after bus failure")
	}
	if rep := r.Deliver(pkt(2, 1, 4)); rep.Kind != PathFabric {
		t.Fatalf("healthy path = %v", rep.Kind)
	}
	// Bus repair re-establishes coverage.
	r.RepairBus()
	settle(r)
	if !r.CanDeliver(0) {
		t.Fatal("coverage not re-established after bus repair")
	}
	if r.CoverPeer(0) < 0 {
		t.Fatal("binding not re-established")
	}
}

func TestOwnBusControllerFailureBlocksCoverage(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(0, linecard.BusController)
	r.FailComponent(0, linecard.SRU)
	settle(r)
	if r.CanDeliver(0) {
		t.Fatal("covered without own bus controller")
	}
	r.RepairComponent(0, linecard.BusController)
	settle(r)
	if !r.CanDeliver(0) {
		t.Fatal("not covered after controller repair")
	}
}

func TestCovererFailureTriggersRebinding(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(0, linecard.SRU)
	settle(r)
	first := r.CoverPeer(0)
	if first < 0 {
		t.Fatal("no initial binding")
	}
	// Kill the coverer's SRU: it can no longer cover PI failures.
	r.FailComponent(first, linecard.SRU)
	settle(r)
	second := r.CoverPeer(0)
	if second == first {
		t.Fatalf("binding still on dead coverer %d", first)
	}
	if second < 0 {
		t.Fatal("no rebinding after coverer failure")
	}
	if !r.CanDeliver(0) {
		t.Fatal("LC 0 down despite available coverers")
	}
}

func TestFabricPortFailureFallsBackToEIB(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.Fabric().FailPort(0)
	rep := r.Deliver(pkt(1, 0, 4))
	if rep.Kind != PathEIBFallback {
		t.Fatalf("path = %v (%s)", rep.Kind, rep.DropReason)
	}
	// BDR drops instead.
	rb := newBDRRouter(t, 4)
	rb.Fabric().FailPort(0)
	if rep := rb.Deliver(pkt(1, 0, 2)); rep.Kind != PathDropped {
		t.Fatalf("BDR rep = %+v", rep)
	}
}

func TestIngressPortFaultDropsOnlyThatPort(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.LC(0).FailPort(1)
	p := pkt(1, 0, 4)
	p.SrcPort = 1
	if rep := r.Deliver(p); rep.Kind != PathDropped || rep.DropReason != "ingress port down" {
		t.Fatalf("rep = %+v", rep)
	}
	p2 := pkt(2, 0, 4)
	p2.SrcPort = 0
	if rep := r.Deliver(p2); rep.Kind != PathFabric {
		t.Fatalf("healthy port affected: %+v", rep)
	}
	// Service predicate is LC-level and stays up.
	if !r.CanDeliver(0) {
		t.Fatal("single port cut took the LC down")
	}
}

func TestOperationalLCs(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	if got := r.OperationalLCs(); got != 6 {
		t.Fatalf("OperationalLCs = %d", got)
	}
	r.FailComponent(0, linecard.PIU)
	if got := r.OperationalLCs(); got != 5 {
		t.Fatalf("OperationalLCs = %d after PIU failure", got)
	}
}

func TestConservationOfPackets(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	r.FailComponent(0, linecard.SRU)
	r.FailComponent(3, linecard.PDLU)
	settle(r)
	const n = 500
	for i := 0; i < n; i++ {
		src := i % 6
		dst := (i*7 + 1) % 6
		if dst == src {
			dst = (dst + 1) % 6
		}
		r.Deliver(pkt(uint64(i), src, dst))
	}
	m := r.Metrics()
	if m.Delivered+m.Dropped != n {
		t.Fatalf("delivered %d + dropped %d != %d", m.Delivered, m.Dropped, n)
	}
	var perLC uint64
	for i := 0; i < 6; i++ {
		perLC += r.LC(i).Delivered
	}
	if perLC != m.Delivered {
		t.Fatalf("per-LC delivered %d != total %d", perLC, m.Delivered)
	}
}

func TestCoverageRefusedWhenNoSpareCapacity(t *testing.T) {
	// The processing tier's capacity check: peers running at ~full load
	// must refuse REQ_D even when healthy (ψ < asked rate).
	r := newDRARouter(t, 4, 4)
	for i := 1; i < 4; i++ {
		r.SetOfferedLoad(i, 0.999*r.LC(i).Capacity())
	}
	r.SetOfferedLoad(0, 0.5*r.LC(0).Capacity()) // asks for 5 Gbps of coverage
	r.FailComponent(0, linecard.SRU)
	settle(r)
	if r.CoverPeer(0) != -1 {
		t.Fatalf("binding established despite no spare capacity (peer %d)", r.CoverPeer(0))
	}
	if r.Metrics().CoverageFailed == 0 {
		t.Fatal("no failed coverage attempts recorded")
	}
	// Freeing capacity and re-triggering reconciliation (via a repair
	// event elsewhere) restores coverage.
	r.SetOfferedLoad(1, 0.1*r.LC(1).Capacity())
	r.FailComponent(2, linecard.LFE) // any event reconciles
	settle(r)
	if r.CoverPeer(0) != 1 {
		t.Fatalf("coverage not re-established after capacity freed (peer %d)", r.CoverPeer(0))
	}
}

func TestSetOfferedLoadValidation(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	r.SetOfferedLoad(0, r.LC(0).Capacity()*0.5)
	if r.OfferedLoad(0) != r.LC(0).Capacity()*0.5 {
		t.Fatal("offered load not stored")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.SetOfferedLoad(0, -1)
}
