package router

import (
	"math"
	"testing"

	"repro/internal/linecard"
)

// figure8Router builds the Section 5.3 configuration: N LCs at load L,
// B_BUS = 10 Gbps, all LCs same protocol so coverage never fails on
// protocol grounds.
func figure8Router(t *testing.T, n int, load float64) *Router {
	t.Helper()
	cfg := UniformConfig(linecard.DRA, n, n)
	cfg.Bus.DataCapacity = 10e9
	cfg.Bus.CtrlSlot = 1e-9
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.InstallUniformRoutes()
	for i := 0; i < n; i++ {
		r.SetOfferedLoad(i, load*r.LC(i).Capacity())
	}
	return r
}

func TestCoverageBandwidthNoFailures(t *testing.T) {
	r := figure8Router(t, 6, 0.15)
	rep := r.CoverageBandwidth()
	if len(rep.PerFaulty) != 0 {
		t.Fatalf("faulty set = %v", rep.PerFaulty)
	}
	if math.Abs(rep.SpareTotal-6*8.5e9) > 1 {
		t.Fatalf("spare = %g", rep.SpareTotal)
	}
}

func TestCoverageBandwidthLowLoadFullService(t *testing.T) {
	// Figure 8 headline: at L = 15%, up to N-1 faulty LCs still get 100%
	// of their demand (N = 6).
	r := figure8Router(t, 6, 0.15)
	for x := 1; x <= 5; x++ {
		r.FailWholeLC(x - 1)
		rep := r.CoverageBandwidth()
		for lc := 0; lc < x; lc++ {
			if f := rep.FractionOfDemand(lc); math.Abs(f-1) > 1e-9 {
				t.Fatalf("X_faulty=%d LC%d fraction = %g, want 1", x, lc, f)
			}
		}
	}
}

func TestCoverageBandwidthHighLoadDegrades(t *testing.T) {
	// At L = 70% and X_faulty = 5 (N = 6), under 10% of demand remains
	// (paper's worst case).
	r := figure8Router(t, 6, 0.7)
	for x := 0; x < 5; x++ {
		r.FailWholeLC(x)
	}
	rep := r.CoverageBandwidth()
	f := rep.FractionOfDemand(0)
	if f >= 0.1 {
		t.Fatalf("fraction = %g, want < 0.1", f)
	}
	if f <= 0 {
		t.Fatalf("fraction = %g, want > 0", f)
	}
	// All faulty LCs share equally under uniform demand.
	for lc := 1; lc < 5; lc++ {
		if math.Abs(rep.FractionOfDemand(lc)-f) > 1e-9 {
			t.Fatal("unequal shares under uniform demand")
		}
	}
}

func TestCoverageBandwidthBusCapBinds(t *testing.T) {
	// Shrink B_BUS so it binds before the spare pool does.
	cfg := UniformConfig(linecard.DRA, 6, 6)
	cfg.Bus.DataCapacity = 1e9 // 1 Gbps bus
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.InstallUniformRoutes()
	for i := 0; i < 6; i++ {
		r.SetOfferedLoad(i, 0.15*r.LC(i).Capacity()) // 1.5 Gbps demand each
	}
	r.FailWholeLC(0)
	rep := r.CoverageBandwidth()
	// Demand 1.5 Gbps > bus 1 Gbps → promise = 1 Gbps.
	if got := rep.PerFaulty[0]; math.Abs(got-1e9) > 1 {
		t.Fatalf("bus-capped bandwidth = %g, want 1e9", got)
	}
}

func TestCoverageBandwidthMonotoneInFailures(t *testing.T) {
	r := figure8Router(t, 6, 0.5)
	prev := math.Inf(1)
	for x := 1; x <= 5; x++ {
		r.FailWholeLC(x - 1)
		f := r.CoverageBandwidth().FractionOfDemand(0)
		if f > prev+1e-12 {
			t.Fatalf("fraction increased with more failures at X=%d: %g > %g", x, f, prev)
		}
		prev = f
	}
}

func TestCoverageBandwidthBDRIsZero(t *testing.T) {
	r := newBDRRouter(t, 4)
	r.SetOfferedLoad(0, 0.15*r.LC(0).Capacity())
	r.FailWholeLC(0)
	rep := r.CoverageBandwidth()
	if rep.PerFaulty[0] != 0 {
		t.Fatalf("BDR coverage bandwidth = %g, want 0", rep.PerFaulty[0])
	}
}

func TestCoverageBandwidthBusFailureIsZero(t *testing.T) {
	r := figure8Router(t, 6, 0.15)
	r.FailWholeLC(0)
	r.FailBus()
	rep := r.CoverageBandwidth()
	if rep.PerFaulty[0] != 0 {
		t.Fatalf("coverage bandwidth over dead bus = %g", rep.PerFaulty[0])
	}
}
