package router

import (
	"strings"
	"testing"

	"repro/internal/linecard"
	"repro/internal/metrics"
)

// TestSetMetricsRegistersFamilies checks the full instrumented family
// set appears and that the fault-driven families move on a DRA failover.
func TestSetMetricsRegistersFamilies(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	reg := metrics.NewRegistry()
	r.SetMetrics(reg)

	// Two simultaneous faults force coverage handshakes and a control-
	// line collision (both REQ_D broadcasts race at t=0).
	r.FailComponent(0, linecard.SRU)
	r.FailComponent(3, linecard.PDLU)
	settle(r)
	for i := 0; i < 200; i++ {
		r.Deliver(pkt(uint64(i), i%6, (i+1)%6))
	}

	txt := reg.PrometheusText()
	for _, family := range []string{
		"sim_events_scheduled_total", "sim_events_fired_total", "sim_heap_depth",
		"eib_ctrl_packets_total", "eib_collisions_total", "eib_active_lps",
		"router_delivered_total", "router_drops_total", "router_detours_total",
		"router_coverage_requests_total", "router_coverage_grants_total",
		"router_coverage_revocations_total", "router_coverage_bandwidth",
		"router_latency_seconds",
	} {
		if !strings.Contains(txt, family) {
			t.Fatalf("family %q missing from exposition:\n%s", family, txt)
		}
	}
	if reg.Counter("router_coverage_grants_total", "").Value() == 0 {
		t.Fatal("no coverage grants recorded after a coverable fault")
	}
	if reg.Counter("eib_collisions_total", "").Value() == 0 {
		t.Fatal("no collisions recorded for simultaneous REQ_D broadcasts")
	}
	if reg.Counter("sim_events_fired_total", "").Value() == 0 {
		t.Fatal("kernel fired no events")
	}
	if reg.Counter("router_delivered_total", "").Value() == 0 {
		t.Fatal("no deliveries recorded")
	}
}

// TestSetMetricsNilIsHarmless proves the nil-registry path leaves the
// router fully functional.
func TestSetMetricsNilIsHarmless(t *testing.T) {
	r := newDRARouter(t, 4, 2)
	r.SetMetrics(nil)
	r.FailComponent(1, linecard.PDLU)
	settle(r)
	rep := r.Deliver(pkt(1, 0, 2))
	if rep.Kind == PathDropped {
		t.Fatalf("delivery failed: %v", rep.DropReason)
	}
}

// BenchmarkMetricsOverhead measures Deliver with no registry (the nil
// instrument path) against a fully instrumented router. The nil case
// must match the never-instrumented baseline; the enabled case should
// stay within a few percent. Record with:
//
//	go test ./internal/router -bench BenchmarkMetricsOverhead -run ^$
func BenchmarkMetricsOverhead(b *testing.B) {
	bench := func(b *testing.B, reg *metrics.Registry) {
		r, err := New(UniformConfig(linecard.DRA, 6, 3))
		if err != nil {
			b.Fatal(err)
		}
		r.InstallUniformRoutes()
		if reg != nil {
			r.SetMetrics(reg)
		}
		p := pkt(1, 0, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.DstLC = -1
			r.Deliver(p)
		}
	}
	b.Run("baseline", func(b *testing.B) { bench(b, nil) })
	b.Run("nil-registry", func(b *testing.B) {
		r, err := New(UniformConfig(linecard.DRA, 6, 3))
		if err != nil {
			b.Fatal(err)
		}
		r.InstallUniformRoutes()
		r.SetMetrics(nil) // explicit nil attach: same nil instruments
		p := pkt(1, 0, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.DstLC = -1
			r.Deliver(p)
		}
	})
	b.Run("enabled", func(b *testing.B) { bench(b, metrics.NewRegistry()) })
}
