package router

import (
	"strings"
	"testing"

	"repro/internal/eib"
	"repro/internal/invariant"
	"repro/internal/linecard"
	"repro/internal/trace"
)

// attachWall wires a fresh invariant checker into the router.
func attachWall(r *Router) *invariant.Checker {
	c := invariant.New()
	r.AttachInvariants(c)
	return c
}

// sweepNow forces one invariant sweep by pushing a no-op event through
// the kernel (the checker runs from the after-step hook).
func sweepNow(r *Router) {
	r.Kernel().After(0, func() {})
	r.Kernel().Step()
}

// TestInvariantWallCleanOnHealthyChurn: a realistic fault/repair storm
// through the public entry points raises no violations — the wall is
// quiet when the model is correct.
func TestInvariantWallCleanOnHealthyChurn(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	c := attachWall(r)
	for i := 0; i < 6; i++ {
		r.SetOfferedLoad(i, 0.3*r.LC(i).Capacity())
	}
	r.FailComponent(1, linecard.PDLU)
	settle(r)
	r.FailComponent(4, linecard.SRU)
	settle(r)
	r.FailBus()
	settle(r)
	r.RepairBus()
	settle(r)
	r.RepairLC(1)
	r.RepairLC(4)
	settle(r)
	for i := 0; i < 100; i++ {
		p := pkt(uint64(i), i%6, (i+2)%6)
		r.Deliver(p)
	}
	sweepNow(r)
	if err := c.Err(); err != nil {
		t.Fatalf("healthy churn raised violations: %v", err)
	}
	if c.Total() != 0 {
		t.Fatalf("Total = %d", c.Total())
	}
}

// TestInvariantWallCatchesBrokenCoverageRule proves the checker is
// live: bypassing the admission path and opening a raw LP on the bus —
// a grant no donor agreed to, exceeding its spare capacity — must be
// caught by the wall. This is the ISSUE's "intentionally-broken
// coverage rule in a test build".
func TestInvariantWallCatchesBrokenCoverageRule(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	c := attachWall(r)
	// Donor LC 1 is fully loaded: zero spare capacity.
	r.SetOfferedLoad(1, r.LC(1).Capacity())
	// Break the rule: open a data-line path granting LC 0 the donor's
	// entire capacity, without any admission check or binding.
	if _, err := r.Bus().OpenLP(0, 1, r.LC(1).Capacity(), eib.Forward); err != nil {
		t.Fatal(err)
	}
	sweepNow(r)
	if c.Total() == 0 {
		t.Fatal("broken coverage rule went undetected")
	}
	names := map[string]bool{}
	for _, v := range c.Violations() {
		names[v.Check] = true
	}
	if !names["coverage-spare"] {
		t.Fatalf("expected a coverage-spare violation, got %v", c.Violations())
	}
	if !names["binding-lp"] {
		t.Fatalf("expected a binding-lp orphan violation, got %v", c.Violations())
	}
}

// TestInvariantWallCatchesDuplicateLP: an LC holding two simultaneous
// data-line paths breaks LP uniqueness the moment the second opens.
func TestInvariantWallCatchesDuplicateLP(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	c := attachWall(r)
	if _, err := r.Bus().OpenLP(2, 3, 1e9, eib.Forward); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Bus().OpenLP(2, 4, 1e9, eib.Forward); err != nil {
		t.Fatal(err)
	}
	sweepNow(r)
	found := false
	for _, v := range c.Violations() {
		if v.Check == "lp-unique" && strings.Contains(v.Detail, "LC 2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate LP went undetected: %v", c.Violations())
	}
}

// TestInvariantDetach: AttachInvariants(nil) returns the router to the
// free disabled state.
func TestInvariantDetach(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	attachWall(r)
	r.AttachInvariants(nil)
	if r.Invariants() != nil {
		t.Fatal("checker still attached")
	}
	r.FailComponent(1, linecard.PDLU)
	settle(r)
	if rep := r.Deliver(pkt(1, 1, 4)); rep.Kind == PathDropped {
		t.Fatalf("delivery failed after detach: %v", rep.DropReason)
	}
}

// --- Coverage revocation under mid-flight donor failure ---

// TestRevocationOnDonorDeath: the donor LC dies while its coverage
// grant is active; the binding must be revoked and re-homed to another
// qualified donor, with the invariant wall quiet throughout.
func TestRevocationOnDonorDeath(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	c := attachWall(r)
	tr := trace.New(128)
	r.SetTracer(tr)
	r.FailComponent(1, linecard.PDLU)
	settle(r)
	donor := r.CoverPeer(1)
	if donor < 0 {
		t.Fatal("no coverage established")
	}
	// Kill the donor's PDLU mid-grant: the binding is now invalid.
	r.FailComponent(donor, linecard.PDLU)
	settle(r)
	if got := r.CoverPeer(1); got == donor {
		t.Fatalf("binding still points at dead donor %d", donor)
	}
	// With LCs 0–2 sharing the protocol, a third donor exists.
	if got := r.CoverPeer(1); got < 0 {
		t.Fatal("coverage not re-homed after donor death")
	}
	if tr.Count(trace.CoverageDown) == 0 {
		t.Fatal("revocation left no coverage-down trace event")
	}
	if !r.CanDeliver(1) {
		t.Fatal("LC 1 should stay deliverable through the re-home")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("revocation raised violations: %v", err)
	}
}

// TestRevocationOnLastDonorDeath: when the dying donor was the only
// qualified peer, the binding is revoked and not replaced, and the
// faulty LC's service goes down.
func TestRevocationOnLastDonorDeath(t *testing.T) {
	// M=2: LCs 0 and 1 share Ethernet — LC 1's PDLU fault has exactly
	// one qualified donor (LC 0).
	r := newDRARouter(t, 6, 2)
	c := attachWall(r)
	r.FailComponent(1, linecard.PDLU)
	settle(r)
	if got := r.CoverPeer(1); got != 0 {
		t.Fatalf("CoverPeer = %d, want 0", got)
	}
	r.FailComponent(0, linecard.PDLU)
	settle(r)
	if got := r.CoverPeer(1); got >= 0 {
		t.Fatalf("binding survived the last donor's death (peer %d)", got)
	}
	if r.CanDeliver(1) {
		t.Fatal("LC 1 cannot be deliverable with no qualified donor")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("revocation raised violations: %v", err)
	}
}

// TestRevocationOnDonorBusControllerDeath: the donor losing its bus
// controller severs the EIB path; the grant must be revoked even though
// the donor's PDLU itself is healthy.
func TestRevocationOnDonorBusControllerDeath(t *testing.T) {
	r := newDRARouter(t, 6, 3)
	c := attachWall(r)
	r.FailComponent(1, linecard.SRU)
	settle(r)
	donor := r.CoverPeer(1)
	if donor < 0 {
		t.Fatal("no coverage established")
	}
	r.FailComponent(donor, linecard.BusController)
	settle(r)
	if got := r.CoverPeer(1); got == donor {
		t.Fatalf("binding still points at off-bus donor %d", donor)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("revocation raised violations: %v", err)
	}
}

// TestDonorDeathMidHandshake: the only donor dies between the REQ_D
// broadcast and the REP_D commit; the in-flight handshake must not
// install a binding to the dead peer (the re-validation race guard).
func TestDonorDeathMidHandshake(t *testing.T) {
	r := newDRARouter(t, 6, 2)
	c := attachWall(r)
	// Start the handshake but do NOT settle: the REQ_D is in flight.
	r.FailComponent(1, linecard.PDLU)
	// The only qualified donor (LC 0) dies before the exchange lands.
	r.FailComponent(0, linecard.PDLU)
	settle(r)
	if got := r.CoverPeer(1); got >= 0 {
		t.Fatalf("mid-handshake death still installed a binding to %d", got)
	}
	if r.CanDeliver(1) {
		t.Fatal("LC 1 must be down with the only donor dead")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("mid-handshake race raised violations: %v", err)
	}
}

// BenchmarkInvariantOverhead measures the invariant wall's cost on the
// Deliver hot path: never attached (baseline), attached then detached
// with AttachInvariants(nil) (the disabled pattern — must match the
// baseline, it is one nil branch per hook), and fully armed. The armed
// case budget is <5% over baseline. Record with:
//
//	go test ./internal/router -bench BenchmarkInvariantOverhead -run ^$
func BenchmarkInvariantOverhead(b *testing.B) {
	soak := func(b *testing.B, arm func(*Router)) {
		r, err := New(UniformConfig(linecard.DRA, 6, 3))
		if err != nil {
			b.Fatal(err)
		}
		r.InstallUniformRoutes()
		if arm != nil {
			arm(r)
		}
		// Fault one PDLU so coverage bindings and LPs exist: the armed
		// sweep then has real structures to walk, not an empty model.
		r.FailComponent(1, linecard.PDLU)
		settle(r)
		p := pkt(1, 0, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.DstLC = -1
			r.Deliver(p)
		}
	}
	b.Run("baseline", func(b *testing.B) { soak(b, nil) })
	b.Run("disabled", func(b *testing.B) {
		soak(b, func(r *Router) {
			r.AttachInvariants(invariant.New())
			r.AttachInvariants(nil) // detach: hooks degrade to nil branches
		})
	})
	b.Run("enabled", func(b *testing.B) {
		soak(b, func(r *Router) { r.AttachInvariants(invariant.New()) })
	})
}
