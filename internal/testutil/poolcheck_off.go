//go:build !poolcheck

package testutil

// PoolcheckEnabled reports whether the binary was built with the
// poolcheck tag. Allocation-count tests skip under poolcheck: the
// released-set bookkeeping that catches use-after-Release allocates,
// which the production build does not.
const PoolcheckEnabled = false
