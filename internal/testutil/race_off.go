//go:build !race

package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-count tests skip under -race: the detector's shadow memory
// adds allocations the production build does not have.
const RaceEnabled = false
